package cluster

// Elastic membership operations: graceful drain, join-time rebalancing, and
// rejoin-by-name.
//
// Both operations share one shape:
//
//  1. Under the table lock: validate, flip the subject's state (up→draining
//     or →joining), and issue a fresh fencing epoch.
//  2. Compute the FINAL view — the ring as it will be after the op, plus
//     any adopter re-points a drain forces — without installing it yet.
//  3. List donor sessions (the draining shard's, or — for a join — every
//     serving member's) and keep only those whose final-view resolution
//     differs from where they are now: the minimally-remapped set.
//  4. Move each batch: mark migrating (requests 503 + retry), export from
//     the donor (detach + close WAL), adopt on the target (fenced copy +
//     replay), then record a routing override so the session is servable
//     immediately, before the ring swap.
//  5. Commit under the lock: install the final ring and states, and compact
//     overrides the new ring resolution now agrees with.
//  6. Repair: re-list every serving member and migrate any stray the racing
//     window let through (creates placed under the old ring, failover
//     adoptions landing mid-op), until a pass finds none.
//
// An op that fails mid-flight (donor died, router shutting down) leaves a
// consistent, retryable cluster: moved sessions answer at their targets via
// overrides, unmoved ones via the old ring — and a donor that died keeps
// its exported WALs on disk where the death-failover path will find them.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/service"
)

// opError is an elastic-op failure with an HTTP status for the admin API.
type opError struct {
	status int
	msg    string
}

func (e *opError) Error() string { return e.msg }

func opErrorf(status int, format string, args ...any) *opError {
	return &opError{status: status, msg: fmt.Sprintf(format, args...)}
}

// DrainResult is the POST /v1/admin/drain response body.
type DrainResult struct {
	Shard         string `json:"shard"`
	Epoch         int64  `json:"epoch"`
	SessionsMoved int    `json:"sessions_moved"`
}

// JoinResult is the POST /v1/admin/join response body.
type JoinResult struct {
	Shard         string `json:"shard"`
	Epoch         int64  `json:"epoch"`
	Rejoined      bool   `json:"rejoined"`
	SessionsMoved int    `json:"sessions_moved"`
}

// finalView is the membership overlay an in-flight elastic operation
// resolves migration targets against: the post-op ring plus the state and
// adopter changes the op will commit. Liveness stays live — an overlay can
// promote a joining member to up, but a member the prober has since
// declared dead resolves through its (overlaid) adopter chain, not the
// overlay's optimism.
type finalView struct {
	ring     *Ring
	states   map[string]memberState
	adopters map[string]string
}

// finalTargetLocked resolves where id must live under the final view,
// requiring the terminal member to be serving RIGHT NOW (it is about to be
// asked to adopt). ok=false means the chain currently ends somewhere that
// cannot accept an adoption yet (recovering); the migration loop re-resolves
// and retries. A nil view resolves under the current table (repair pass).
func (ms *membership) finalTargetLocked(fv *finalView, id string) (Shard, bool) {
	var name string
	switch {
	case fv != nil:
		name = fv.ring.Owner(id)
	default:
		var ok bool
		if name, ok = ms.overrides[id]; !ok {
			name = ms.ring.Owner(id)
		}
	}
	for hops := 0; hops <= len(ms.order)+1; hops++ {
		m := ms.members[name]
		if m == nil {
			return Shard{}, false
		}
		st := m.state
		ad := m.adopter
		if fv != nil {
			if ov, ok := fv.states[name]; ok {
				switch {
				case ov == memberLeft:
					// The drain subject: targets must avoid it even while
					// it still serves.
					st = memberLeft
				case ov == memberUp && st == memberJoining:
					// The join subject: adoptable while actually alive.
					st = memberUp
				}
			}
			if ov, ok := fv.adopters[name]; ok {
				ad = ov
			}
		}
		switch {
		case st.serving():
			return m.shard, true
		case st == memberFailed && ad != "":
			name = ad
		default:
			return Shard{}, false
		}
	}
	return Shard{}, false
}

// setMigrating marks or clears a batch of sessions as mid-handoff.
func (ms *membership) setMigrating(ids []string, on bool) {
	ms.mu.Lock()
	for _, id := range ids {
		if on {
			ms.migrating[id] = true
		} else {
			delete(ms.migrating, id)
		}
	}
	ms.mu.Unlock()
}

// listSessions asks one shard which sessions it hosts.
func (ms *membership) listSessions(ctx context.Context, sh Shard) ([]string, error) {
	lctx, cancel := context.WithTimeout(ctx, ms.cfg.AdoptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(lctx, http.MethodGet, sh.URL+"/v1/admin/sessions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("list sessions: HTTP %d: %s", resp.StatusCode, b)
	}
	var lr service.SessionListResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, err
	}
	return lr.Sessions, nil
}

// export asks the donor to detach the sessions and hand over their WALs.
func (ms *membership) export(ctx context.Context, donor Shard, ids []string, epoch int64) (*service.ExportResponse, error) {
	body, err := json.Marshal(service.ExportRequest{SessionIDs: ids, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	ectx, cancel := context.WithTimeout(ctx, ms.cfg.AdoptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ectx, http.MethodPost, donor.URL+"/v1/admin/export", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("export: HTTP %d: %s", resp.StatusCode, b)
	}
	var er service.ExportResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return nil, err
	}
	return &er, nil
}

// errMigrateRolledBack marks a stalled migration whose un-adopted sessions
// were successfully re-adopted by the donor itself: the cluster is exactly
// as before the move and the op can safely revert its state flip.
var errMigrateRolledBack = errors.New("cluster: stalled migration rolled back to the donor")

// migrateStallRounds is how many consecutive no-progress rounds (one
// HeartbeatInterval each) a migration tolerates before giving up. Targets
// legitimately disappear for a few rounds mid-failover; a cluster with no
// adoptable target at all must NOT be waited out while holding the
// topology-op lock — the join that would create a target needs that lock.
const migrateStallRounds = 40

// migrate moves the named sessions off donor to their final-view owners:
// mark migrating, export once, then adopt each WAL on its (re-resolved each
// round) target until every file lands, the migration stalls, or ctx ends.
// Sessions the donor no longer hosts just leave the migrating set — the
// existing routing answers for them. Returns how many sessions moved.
func (ms *membership) migrate(ctx context.Context, donor Shard, ids []string, fv *finalView, epoch int64) (int, error) {
	if len(ids) == 0 {
		return 0, nil
	}
	ms.setMigrating(ids, true)
	exp, err := ms.export(ctx, donor, ids, epoch)
	if err != nil {
		ms.setMigrating(ids, false)
		return 0, fmt.Errorf("export from %s: %w", donor.Name, err)
	}
	ms.setMigrating(exp.Missing, false)

	// id → exported WAL path.
	files := make(map[string]string, len(exp.JournalFiles))
	for _, p := range exp.JournalFiles {
		id := strings.TrimSuffix(filepath.Base(p), ".wal")
		files[id] = p
	}
	moved := 0
	stalled := 0
	for len(files) > 0 {
		if ctx.Err() != nil {
			// Router shutting down mid-migration: the un-adopted sessions
			// stay marked migrating (their state lives only in exported WAL
			// files now); a death failover of the donor remains the path
			// that would recover them.
			return moved, fmt.Errorf("migration from %s interrupted: %w", donor.Name, ctx.Err())
		}
		// Group the remaining files by their current target.
		groups := make(map[string][]string)
		ms.mu.Lock()
		for id := range files {
			if sh, ok := ms.finalTargetLocked(fv, id); ok {
				groups[sh.Name] = append(groups[sh.Name], id)
			}
		}
		ms.mu.Unlock()
		progress := false
		for tname, gids := range groups {
			paths := make([]string, len(gids))
			for i, id := range gids {
				paths[i] = files[id]
			}
			if _, err := ms.adopt(ctx, tname, service.AdoptRequest{JournalFiles: paths, From: donor.Name, Epoch: epoch}); err != nil {
				ms.cfg.Logf("wire-serve route: migrating %d session(s) %s -> %s: %v; retrying", len(gids), donor.Name, tname, err)
				ms.noteFailure(tname)
				continue
			}
			progress = true
			ms.mu.Lock()
			for _, id := range gids {
				ms.overrides[id] = tname
				delete(ms.migrating, id)
				delete(files, id)
			}
			ms.mu.Unlock()
			moved += len(gids)
		}
		if progress {
			stalled = 0
			continue
		}
		stalled++
		if stalled < migrateStallRounds {
			sleepCtx(ctx, ms.cfg.HeartbeatInterval)
			continue
		}
		// No adoptable target for too long. The exported WALs sit in the
		// donor's own journal directory — hand them straight back to it
		// (own-dir re-adopt lifts nothing: export leaves no fence) so the
		// sessions are live again, then fail the op as cleanly reverted.
		remIDs := make([]string, 0, len(files))
		remPaths := make([]string, 0, len(files))
		for id, p := range files {
			remIDs = append(remIDs, id)
			remPaths = append(remPaths, p)
		}
		if _, rerr := ms.adopt(ctx, donor.Name, service.AdoptRequest{JournalFiles: remPaths, From: donor.Name, Epoch: epoch}); rerr != nil {
			ms.cfg.Logf("wire-serve route: rolling %d stalled session(s) back to %s: %v", len(remPaths), donor.Name, rerr)
			return moved, fmt.Errorf("migration from %s stalled with no adoptable target for %d session(s); their WALs stay exported for failover", donor.Name, len(files))
		}
		ms.setMigrating(remIDs, false)
		ms.migrated.Add(int64(moved))
		return moved, fmt.Errorf("migration from %s stalled with no adoptable target; %d session(s) %w", donor.Name, len(remPaths), errMigrateRolledBack)
	}
	ms.migrated.Add(int64(moved))
	return moved, nil
}

// repointsLocked computes new adopter pointers for failed members whose
// adopter chains currently terminate at avoid (their sessions live on the
// member about to drain out): each is re-pointed at the first fully-up
// member after it in order, skipping avoid. The drain migration then moves
// those sessions to exactly that member, keeping the single-pointer model
// consistent.
func (ms *membership) repointsLocked(avoid string) (map[string]string, error) {
	rp := make(map[string]string)
	for name, m := range ms.members {
		if m.state != memberFailed {
			continue
		}
		if sh, st := ms.followLocked(name); st != routeOK || sh.Name != avoid {
			continue
		}
		idx := -1
		for i, n := range ms.order {
			if n == name {
				idx = i
				break
			}
		}
		if idx == -1 {
			return nil, fmt.Errorf("cluster: failed shard %q is not in the membership order", name)
		}
		target := ""
		for off := 1; off <= len(ms.order); off++ {
			cand := ms.order[(idx+off)%len(ms.order)]
			if cand == name || cand == avoid {
				continue
			}
			if cm := ms.members[cand]; cm != nil && cm.state == memberUp {
				target = cand
				break
			}
		}
		if target == "" {
			return nil, fmt.Errorf("cluster: no live peer to re-point failed shard %q away from %q", name, avoid)
		}
		rp[name] = target
	}
	return rp, nil
}

// beginGrace opens (or extends) the elastic 404 grace window.
func (ms *membership) beginGrace() {
	d := 4 * ms.cfg.HeartbeatInterval
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	ms.mu.Lock()
	ms.graceUntil = ms.cfg.Clock().Add(d)
	ms.mu.Unlock()
}

// inGrace reports whether session 404s from shards should be answered as
// retryable 503s: an elastic operation is redistributing sessions (or just
// finished and the repair pass may still be placing strays), so a 404 may
// be a routing transient rather than a deleted session.
func (ms *membership) inGrace() bool {
	if ms.opActive.Load() {
		return true
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.cfg.Clock().Before(ms.graceUntil)
}

// shouldRetry404 reports whether a 404 a shard returned for session id ought
// to be rewritten into a retryable 503: the session may simply not have
// arrived at its new home yet. True while the session is marked migrating,
// while the elastic grace window is open, or when routing has already moved
// on from the shard that was asked (the resolution raced the op's commit).
func (ms *membership) shouldRetry404(id, askedShard string) bool {
	if ms.inGrace() {
		return true
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.migrating[id] {
		return true
	}
	sh, st := ms.resolveSessionLocked(id)
	return st != routeOK || sh.Name != askedShard
}

// drain gracefully decommissions a shard: new sessions stop landing on it,
// every session it hosts migrates to its post-drain owner, and the member
// leaves the ring. The shard process itself stays up throughout — it is the
// donor — and can be stopped once drain returns.
func (ms *membership) drain(ctx context.Context, name string) (*DrainResult, error) {
	if !ms.opMu.TryLock() {
		return nil, opErrorf(http.StatusConflict, "another topology operation is in progress; retry")
	}
	defer ms.opMu.Unlock()
	ms.opActive.Store(true)
	defer ms.opActive.Store(false)

	ms.mu.Lock()
	m := ms.members[name]
	if m == nil {
		ms.mu.Unlock()
		return nil, opErrorf(http.StatusNotFound, "unknown shard %q", name)
	}
	if m.state != memberUp {
		st := m.state
		ms.mu.Unlock()
		return nil, opErrorf(http.StatusConflict, "shard %s is %s; only an up shard can drain", name, st)
	}
	liveOthers := 0
	for n2, m2 := range ms.members {
		if n2 != name && m2.state == memberUp {
			liveOthers++
		}
	}
	if liveOthers == 0 {
		ms.mu.Unlock()
		return nil, opErrorf(http.StatusConflict, "cannot drain %s: it is the last live shard", name)
	}
	m.state = memberDraining
	ms.epoch++
	epoch := ms.epoch
	donor := m.shard
	names := make([]string, 0, len(ms.ringNames))
	for _, n2 := range ms.ringNames {
		if n2 != name {
			names = append(names, n2)
		}
	}
	rp, rpErr := ms.repointsLocked(name)
	ms.mu.Unlock()

	revert := func() {
		ms.mu.Lock()
		if mm := ms.members[name]; mm != nil && mm.state == memberDraining {
			mm.state = memberUp
		}
		ms.mu.Unlock()
	}
	if rpErr != nil {
		revert()
		return nil, opErrorf(http.StatusConflict, "drain %s: %v", name, rpErr)
	}
	ring2, err := NewRing(names, ms.cfg.VNodes)
	if err != nil {
		revert()
		return nil, opErrorf(http.StatusInternalServerError, "drain %s: rebuilding ring: %v", name, err)
	}
	fv := &finalView{ring: ring2, states: map[string]memberState{name: memberLeft}, adopters: rp}

	ids, err := ms.listSessions(ctx, donor)
	if err != nil {
		revert()
		return nil, opErrorf(http.StatusBadGateway, "drain %s: listing sessions: %v", name, err)
	}
	ms.cfg.Logf("wire-serve route: draining %s: migrating %d session(s) (epoch %d)", name, len(ids), epoch)
	moved, err := ms.migrate(ctx, donor, ids, fv, epoch)
	if err != nil {
		if errors.Is(err, errMigrateRolledBack) {
			// Everything un-moved is hosted by the donor again: return it
			// to full service. Already-moved sessions stay with their
			// adopters via overrides.
			revert()
			return nil, opErrorf(http.StatusBadGateway, "drain %s: %v", name, err)
		}
		// Donor died or export failed mid-drain: leave the member state
		// as-is — the heartbeat prober owns a draining member like any
		// other, so an unplanned death mid-drain falls back to failover.
		// Moved sessions answer via overrides; the op is retryable.
		return nil, opErrorf(http.StatusBadGateway, "drain %s: %v", name, err)
	}

	ms.mu.Lock()
	if mm := ms.members[name]; mm != nil && mm.state == memberDraining {
		mm.state = memberLeft
		mm.adopter = ""
		mm.misses = 0
	}
	ms.ring = ring2
	ms.ringNames = names
	for f, a := range rp {
		ms.members[f].adopter = a
	}
	ms.compactOverridesLocked()
	ms.mu.Unlock()
	ms.drains.Add(1)
	ms.beginGrace()

	if n, rerr := ms.repair(ctx, epoch); rerr != nil {
		ms.cfg.Logf("wire-serve route: post-drain repair: %v", rerr)
	} else {
		moved += n
	}
	ms.beginGrace()
	ms.cfg.Logf("wire-serve route: drained %s: %d session(s) moved, ring now %v (epoch %d)", name, moved, names, epoch)
	return &DrainResult{Shard: name, Epoch: epoch, SessionsMoved: moved}, nil
}

// join adds sh to the ring — a brand-new shard, a drained one returning, or
// a restarted one rejoining by name after a death failover. Only the
// minimally-remapped key ranges migrate: each serving member exports the
// sessions whose post-join resolution moves. A rejoining-after-failure
// member keeps its adopter pointer until commit, so its sessions stay
// routable (at the adopter) throughout the migration back.
func (ms *membership) join(ctx context.Context, sh Shard) (*JoinResult, error) {
	if sh.Name == "" || sh.URL == "" || sh.JournalDir == "" {
		return nil, opErrorf(http.StatusBadRequest, "join: name, url, and journal_dir are all required")
	}
	if !ms.opMu.TryLock() {
		return nil, opErrorf(http.StatusConflict, "another topology operation is in progress; retry")
	}
	defer ms.opMu.Unlock()
	ms.opActive.Store(true)
	defer ms.opActive.Store(false)

	// The newcomer must be reachable before anything moves toward it.
	if err := ms.checkHealth(ctx, sh); err != nil {
		return nil, opErrorf(http.StatusBadGateway, "join %s: shard not healthy: %v", sh.Name, err)
	}

	ms.mu.Lock()
	onRing := false
	for _, n2 := range ms.ringNames {
		if n2 == sh.Name {
			onRing = true
			break
		}
	}
	// A partitioned member (or one mid-confirmation) cannot be enumerated
	// as a migration donor, yet it may host sessions whose routing depends
	// on the adopter chain or ring assignment this join is about to change
	// — flipping a rejoiner to serving would orphan them (routed to a shard
	// that fenced them away, answered with 404s). Partitions are transient:
	// defer the join and let the auto-rejoin retry after the link heals. A
	// partition that never heals escalates to a real failover, which also
	// unblocks this path.
	for n2, m := range ms.members {
		if m.state == memberPartitioned || m.confirming {
			ms.mu.Unlock()
			return nil, opErrorf(http.StatusServiceUnavailable,
				"join %s deferred: shard %s is partitioned from the router; its hosted sessions cannot be rebalanced until the link heals", sh.Name, n2)
		}
	}
	existing := ms.members[sh.Name]
	rejoined := false
	var prevState memberState
	switch {
	case existing == nil:
		ms.members[sh.Name] = &member{shard: sh, state: memberJoining}
		ms.order = append(ms.order, sh.Name)
	case existing.state == memberLeft || existing.state == memberFailed:
		prevState = existing.state
		existing.shard = sh
		existing.state = memberJoining
		existing.misses = 0
		// A failed member's adopter pointer survives until commit: its
		// sessions still live on the adopter and must stay routable while
		// they migrate back.
		rejoined = true
	case existing.state == memberUp && !onRing:
		// Up but absent from the ring: a spurious death declaration revived
		// the member after an interrupted drain or join already swapped (or
		// never committed) the ring without it. Joining it again is pure
		// repair — the same minimal-migration path puts it back on the ring.
		prevState = existing.state
		existing.shard = sh
		existing.state = memberJoining
		existing.misses = 0
		rejoined = true
	case existing.state == memberRecovering && !ms.anyUpLocked():
		// Cluster-down bootstrap: every member is dead or dying, so the
		// failover engine has no adopter to hand this member's sessions to
		// and would otherwise hold it in recovering forever. A restarted
		// process rejoining by name is the only way back; the member's
		// failover goroutine observes the state change and stands down.
		prevState = existing.state
		existing.shard = sh
		existing.state = memberJoining
		existing.misses = 0
		rejoined = true
	default:
		st := existing.state
		ms.mu.Unlock()
		return nil, opErrorf(http.StatusConflict, "shard %s is %s; only an unknown, left, or failed shard can join", sh.Name, st)
	}
	ms.epoch++
	epoch := ms.epoch
	names := ms.ringNames
	if !onRing {
		names = append(append([]string(nil), ms.ringNames...), sh.Name)
	}
	curRing := ms.ring
	ms.mu.Unlock()

	revert := func() {
		ms.mu.Lock()
		respawn := false
		if mm := ms.members[sh.Name]; mm != nil && mm.state == memberJoining {
			if existing == nil {
				delete(ms.members, sh.Name)
				for i, n2 := range ms.order {
					if n2 == sh.Name {
						ms.order = append(ms.order[:i], ms.order[i+1:]...)
						break
					}
				}
			} else {
				mm.state = prevState
				// A member returned to recovering must again have a
				// failover goroutine owning it — the previous one stood
				// down when the join flipped the state.
				respawn = prevState == memberRecovering
			}
		}
		ms.mu.Unlock()
		if respawn {
			go ms.failover(ms.opCtx(), sh.Name)
		}
	}

	ring2 := curRing
	if !onRing {
		var err error
		if ring2, err = NewRing(names, ms.cfg.VNodes); err != nil {
			revert()
			return nil, opErrorf(http.StatusInternalServerError, "join %s: rebuilding ring: %v", sh.Name, err)
		}
	}
	fv := &finalView{
		ring:     ring2,
		states:   map[string]memberState{sh.Name: memberUp},
		adopters: map[string]string{sh.Name: ""},
	}

	// Every serving member is a potential donor; which sessions move is
	// decided per session against the final view.
	ms.mu.Lock()
	donors := make([]Shard, 0, len(ms.order))
	for _, n2 := range ms.order {
		if n2 == sh.Name {
			continue
		}
		if m := ms.members[n2]; m != nil && m.state.serving() {
			donors = append(donors, m.shard)
		}
	}
	ms.mu.Unlock()

	moved := 0
	for _, d := range donors {
		ids, err := ms.listSessions(ctx, d)
		if err != nil {
			// A donor dying mid-join is the failover path's problem; its
			// sessions will resurface on an adopter and the repair pass (or
			// a retried join) moves them then.
			ms.cfg.Logf("wire-serve route: join %s: listing %s: %v; skipping donor", sh.Name, d.Name, err)
			continue
		}
		var move []string
		ms.mu.Lock()
		for _, id := range ids {
			if ms.migrating[id] {
				continue
			}
			if t, ok := ms.finalTargetLocked(fv, id); ok && t.Name != d.Name {
				move = append(move, id)
			}
		}
		ms.mu.Unlock()
		n, err := ms.migrate(ctx, d, move, fv, epoch)
		moved += n
		if err != nil {
			if moved == 0 && errors.Is(err, errMigrateRolledBack) {
				// Nothing landed anywhere and the donor holds everything
				// again: the join is a clean no-op, so undo the state flip
				// and let a retry start fresh.
				revert()
			}
			return nil, opErrorf(http.StatusBadGateway, "join %s: %v", sh.Name, err)
		}
	}

	ms.mu.Lock()
	if mm := ms.members[sh.Name]; mm != nil && mm.state == memberJoining {
		mm.state = memberUp
		mm.adopter = ""
		mm.misses = 0
	}
	ms.ring = ring2
	ms.ringNames = names
	ms.compactOverridesLocked()
	ms.mu.Unlock()
	ms.joins.Add(1)
	ms.beginGrace()

	if n, rerr := ms.repair(ctx, epoch); rerr != nil {
		ms.cfg.Logf("wire-serve route: post-join repair: %v", rerr)
	} else {
		moved += n
	}
	ms.beginGrace()
	ms.cfg.Logf("wire-serve route: joined %s (rejoin=%v): %d session(s) moved, ring now %v (epoch %d)", sh.Name, rejoined, moved, names, epoch)
	return &JoinResult{Shard: sh.Name, Epoch: epoch, Rejoined: rejoined, SessionsMoved: moved}, nil
}

// repair re-lists every serving member and migrates any session hosted away
// from its current resolution — strays from the op's racing window (creates
// placed under the old ring, failover adoptions that landed mid-op). It
// loops until a pass finds none (bounded).
func (ms *membership) repair(ctx context.Context, epoch int64) (int, error) {
	total := 0
	for pass := 0; pass < 5; pass++ {
		ms.mu.Lock()
		hosts := make([]Shard, 0, len(ms.order))
		for _, name := range ms.order {
			if m := ms.members[name]; m != nil && m.state.serving() {
				hosts = append(hosts, m.shard)
			}
		}
		ms.mu.Unlock()
		strays := 0
		for _, h := range hosts {
			ids, err := ms.listSessions(ctx, h)
			if err != nil {
				ms.cfg.Logf("wire-serve route: repair: listing %s: %v; skipping", h.Name, err)
				continue
			}
			var move []string
			ms.mu.Lock()
			for _, id := range ids {
				if ms.migrating[id] {
					continue
				}
				if sh, st := ms.resolveSessionLocked(id); st == routeOK && sh.Name != h.Name {
					move = append(move, id)
				}
			}
			ms.mu.Unlock()
			if len(move) == 0 {
				continue
			}
			strays += len(move)
			n, err := ms.migrate(ctx, h, move, nil, epoch)
			total += n
			if err != nil {
				return total, err
			}
			ms.mu.Lock()
			ms.compactOverridesLocked()
			ms.mu.Unlock()
		}
		if strays == 0 {
			return total, nil
		}
	}
	return total, nil
}

// compactOverridesLocked drops override entries the ring resolution now
// agrees with (after an op's ring swap the moved sessions' ring owners ARE
// their override targets, so the overrides are redundant).
func (ms *membership) compactOverridesLocked() {
	for id, name := range ms.overrides {
		osh, ost := ms.followLocked(name)
		rsh, rst := ms.followLocked(ms.ring.Owner(id))
		if ost == routeOK && rst == routeOK && osh.Name == rsh.Name {
			delete(ms.overrides, id)
		}
	}
}

// anyUpLocked reports whether any member is fully up. Caller holds ms.mu.
func (ms *membership) anyUpLocked() bool {
	for _, m := range ms.members {
		if m.state == memberUp {
			return true
		}
	}
	return false
}

// checkHealth probes one shard's /readyz once: only a ready shard counts —
// a draining or replaying one must not be revived or join-committed yet.
func (ms *membership) checkHealth(ctx context.Context, sh Shard) error {
	hctx, cancel := context.WithTimeout(ctx, ms.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, sh.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	req.Header.Set(service.RouterIdentityHeader, "1")
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}
