package cluster

import (
	"fmt"
	"strconv"
	"testing"
)

func ringShards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "shard-" + strconv.Itoa(i)
	}
	return out
}

// TestRingBalance pins the satellite's balance bound: with DefaultVNodes
// virtual nodes, 10k session IDs spread across the fleet within ±25% of the
// per-shard mean. The bound is what the router's placement quality rests on;
// tightening vnodes below the default is what would break it.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r, err := NewRing(ringShards(n), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		spread := r.Spread(10000)
		mean := 10000.0 / float64(n)
		for shard, count := range spread {
			dev := (float64(count) - mean) / mean
			if dev < -0.25 || dev > 0.25 {
				t.Errorf("%d shards: %s owns %d keys, %+.1f%% off the mean %f", n, shard, count, dev*100, mean)
			}
		}
	}
}

// TestRingDeterminism pins that ownership is a pure function of the shard
// set: two rings built from the same shards agree on every key, and shard
// list order does not matter.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing([]string{"s0", "s1", "s2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s2", "s0", "s1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := "session-" + strconv.Itoa(i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %s: owner %s != %s under permuted shard list", key, ao, bo)
		}
	}
}

// TestRingMinimalRemapOnLeave pins the consistent-hashing property the
// failover story depends on: removing one shard moves ONLY that shard's keys
// — every key owned by a survivor keeps its owner.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	shards := ringShards(5)
	before, err := NewRing(shards, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	removed := shards[2]
	after, err := NewRing(append(append([]string(nil), shards[:2]...), shards[3:]...), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 10000; i++ {
		key := "session-" + strconv.Itoa(i)
		was, now := before.Owner(key), after.Owner(key)
		if was == removed {
			moved++
			continue // had to move somewhere
		}
		if was != now {
			t.Fatalf("key %s moved %s -> %s though %s was the shard removed", key, was, now, removed)
		}
	}
	if moved == 0 {
		t.Fatal("removed shard owned no keys; the test proved nothing")
	}
}

// TestRingMinimalRemapOnJoin pins the other direction: adding a shard only
// moves keys ONTO the new shard, never between existing ones.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	shards := ringShards(4)
	before, err := NewRing(shards, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	joined := "shard-new"
	after, err := NewRing(append(append([]string(nil), shards...), joined), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	gained := 0
	for i := 0; i < 10000; i++ {
		key := "session-" + strconv.Itoa(i)
		was, now := before.Owner(key), after.Owner(key)
		if was == now {
			continue
		}
		if now != joined {
			t.Fatalf("key %s moved %s -> %s though only %s joined", key, was, now, joined)
		}
		gained++
	}
	if gained == 0 {
		t.Fatal("joined shard gained no keys; the test proved nothing")
	}
}

// TestRingErrors pins construction validation.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate shard accepted")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, err := NewRing(ringShards(16), DefaultVNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-session-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i&1023])
	}
}
