package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/service"
)

// Tenant routing: the registry is per-shard soft state, so the router
// broadcasts writes and aggregates reads. POST /v1/tenants configures the
// tenant on every live shard (each shard enforces the budget/cap gate for
// the sessions it hosts — the global limit is therefore enforced per shard,
// a deliberately looser bound than the single-daemon gate). GET fans out
// like /metrics and sums the counters, so operators and the stream loadgen
// see fleet-wide arrivals, throttles, spend, and deadline misses.

// handleTenantCreate broadcasts the spec to every up shard and relays one
// successful response. A shard that fails the broadcast simply misses the
// spec (its gate stays unlimited) — the same soft-state contract as a shard
// restart, where specs are re-registered by the operator or loadgen.
func (rt *Router) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return
	}
	var spec service.TenantSpec
	if err := json.Unmarshal(body, &spec); err != nil || spec.Name == "" {
		rt.writeError(w, http.StatusBadRequest, "bad_request", `tenant wants {"name", ...}`)
		return
	}
	shards := rt.members.upShards()
	if len(shards) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no_shards", "no live shards")
		return
	}
	oks := make([]*service.TenantInfo, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			oks[i] = rt.postShardTenant(r, sh, body)
		}(i, sh)
	}
	wg.Wait()
	merged := mergeTenantInfos(oks)
	if merged == nil {
		rt.writeError(w, http.StatusBadGateway, "broadcast_failed", "no shard accepted the tenant spec")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(merged)
}

// handleTenantList fans out GET /v1/tenants to every up shard and merges the
// rows by name, summing the counters.
func (rt *Router) handleTenantList(w http.ResponseWriter, r *http.Request) {
	dumps := rt.fetchTenantLists(r)
	byName := map[string]*service.TenantInfo{}
	for _, list := range dumps {
		for i := range list {
			info := list[i]
			if have := byName[info.Name]; have != nil {
				mergeTenantInto(have, &info)
			} else {
				cp := info
				byName[info.Name] = &cp
			}
		}
	}
	out := service.TenantListResponse{Tenants: make([]service.TenantInfo, 0, len(byName))}
	for _, info := range byName {
		out.Tenants = append(out.Tenants, *info)
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Name < out.Tenants[j].Name })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleTenantGet fans out GET /v1/tenants/{name}; every shard missing the
// tenant yields 404, anything else merges into one fleet-wide row.
func (rt *Router) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	shards := rt.members.upShards()
	infos := make([]*service.TenantInfo, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			infos[i] = rt.getShardTenant(r, sh, "/v1/tenants/"+name)
		}(i, sh)
	}
	wg.Wait()
	merged := mergeTenantInfos(infos)
	if merged == nil {
		rt.writeError(w, http.StatusNotFound, "not_found", "tenant %q not found", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(merged)
}

func (rt *Router) fetchTenantLists(r *http.Request) [][]service.TenantInfo {
	shards := rt.members.upShards()
	dumps := make([][]service.TenantInfo, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			var resp service.TenantListResponse
			if rt.shardJSON(r, sh, http.MethodGet, "/v1/tenants", nil, &resp) {
				dumps[i] = resp.Tenants
			}
		}(i, sh)
	}
	wg.Wait()
	return dumps
}

func (rt *Router) postShardTenant(r *http.Request, sh Shard, body []byte) *service.TenantInfo {
	var info service.TenantInfo
	if !rt.shardJSON(r, sh, http.MethodPost, "/v1/tenants", body, &info) {
		return nil
	}
	return &info
}

func (rt *Router) getShardTenant(r *http.Request, sh Shard, path string) *service.TenantInfo {
	var info service.TenantInfo
	if !rt.shardJSON(r, sh, http.MethodGet, path, nil, &info) {
		return nil
	}
	return &info
}

// shardJSON issues one JSON request against a shard under the heartbeat
// timeout and decodes a 2xx response into out; any failure reports false.
func (rt *Router) shardJSON(r *http.Request, sh Shard, method, path string, body []byte, out any) bool {
	fctx, cancel := context.WithTimeout(r.Context(), rt.cfg.HeartbeatTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(fctx, method, sh.URL+path, rd)
	if err != nil {
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false
	}
	return json.NewDecoder(resp.Body).Decode(out) == nil
}

// mergeTenantInfos folds per-shard rows for one tenant into a fleet-wide
// row; nil when no shard answered with the tenant.
func mergeTenantInfos(infos []*service.TenantInfo) *service.TenantInfo {
	var merged *service.TenantInfo
	for _, info := range infos {
		if info == nil {
			continue
		}
		if merged == nil {
			cp := *info
			merged = &cp
			continue
		}
		mergeTenantInto(merged, info)
	}
	return merged
}

// mergeTenantInto sums src's counters into dst. Specs are broadcast-
// identical in the happy path; if a shard missed the broadcast (restart)
// the stricter non-zero limit wins so the merged row reflects the
// configured gate rather than the unlimited default.
func mergeTenantInto(dst, src *service.TenantInfo) {
	dst.ActiveSessions += src.ActiveSessions
	dst.ArrivalsTotal += src.ArrivalsTotal
	dst.ThrottledTotal += src.ThrottledTotal
	dst.SpendUnits += src.SpendUnits
	dst.DeadlineMisses += src.DeadlineMisses
	if dst.BudgetUnits == 0 || (src.BudgetUnits > 0 && src.BudgetUnits < dst.BudgetUnits) {
		if src.BudgetUnits > 0 {
			dst.BudgetUnits = src.BudgetUnits
		}
	}
	if dst.MaxActive == 0 || (src.MaxActive > 0 && src.MaxActive < dst.MaxActive) {
		if src.MaxActive > 0 {
			dst.MaxActive = src.MaxActive
		}
	}
}
