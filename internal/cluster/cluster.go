// Package cluster is the sharded multi-node control plane: a stateless
// routing front end (`wire-serve route`) over a fleet of session-shard
// daemons (ordinary `wire-serve serve -shard` processes), turning N
// wire-serve processes into one logical controller-as-a-service API.
//
// Placement is consistent hashing: the router draws each new session's ID
// itself, hashes it onto the ring of configured shards, and forwards the
// create with the ID in the SessionIDHeader; every later request for that
// session hashes to the same shard. The ring is elastic: shards drain out
// gracefully (POST /v1/admin/drain migrates every hosted session to its
// post-drain owner while the shard keeps serving, then removes it from the
// ring), join or rejoin at runtime (POST /v1/admin/join migrates only the
// minimally-remapped key ranges onto the newcomer), and still fail over on
// unplanned death, detected by the router's heartbeat loop. Each topology
// operation carries a monotone fencing epoch so a stale restarted shard
// cannot double-serve sessions a peer has already adopted (see
// service/handoff.go).
//
// Failover is journal handoff. Every shard journals its sessions to its own
// directory (the same per-session WALs single-node wire-serve writes). When
// a shard misses enough heartbeats the router declares it dead, picks a
// surviving peer, and POSTs the dead shard's journal directories to the
// peer's /v1/admin/adopt endpoint; the peer resurrects every session by WAL
// replay — the same recoverSession machinery a restarted daemon uses — and
// the router re-routes the dead shard's sessions to it. While the handoff is
// in flight the router answers 503 shard_recovering with a Retry-After hint
// instead of routing into a half-recovered peer. Because the WAL replay
// restores each session's exactly-once sequence cache, a plan request
// retried across the failover is answered with the decision the dead shard
// already released — Wire-Plan-Seq semantics hold fleet-wide.
//
// The certificate is ShardCertify (`wire-serve loadgen -shards N
// -kill-shard`): an N-shard in-process cluster under loadgen with a mid-run
// shard kill must finish with zero dropped sessions and every decision
// stream byte-identical to a fault-free in-process twin. The elastic plane
// adds two harder runs: `-rolling-restart` drains, restarts, and rejoins
// every shard in sequence under live traffic, and `-churn N` applies a
// seeded random schedule of kill/drain/join events (internal/chaos) — both
// with the same zero-drop, byte-identical bar.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Shard is one session-shard daemon in the static shard map.
type Shard struct {
	// Name is the shard's stable identity on the ring.
	Name string `json:"name"`
	// URL is the shard daemon's base URL (e.g. "http://10.0.0.2:8080").
	URL string `json:"url"`
	// JournalDir is the shard's session journal directory as reachable by
	// its peers (shared filesystem): the unit of failover handoff.
	JournalDir string `json:"journal_dir"`
}

// ParseShard parses one "name=url=journal-dir" flag value.
func ParseShard(s string) (Shard, error) {
	parts := strings.SplitN(s, "=", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return Shard{}, fmt.Errorf("cluster: shard %q: want name=url=journal-dir", s)
	}
	return Shard{
		Name:       parts[0],
		URL:        strings.TrimRight(parts[1], "/"),
		JournalDir: parts[2],
	}, nil
}

// LoadShardMap reads a static shard map: a JSON array of Shard objects.
func LoadShardMap(path string) ([]Shard, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard map: %w", err)
	}
	var shards []Shard
	if err := json.Unmarshal(b, &shards); err != nil {
		return nil, fmt.Errorf("cluster: shard map %s: %w", path, err)
	}
	return shards, nil
}

// ValidateShards checks a shard map for emptiness and duplicates.
func ValidateShards(shards []Shard) error {
	if len(shards) == 0 {
		return fmt.Errorf("cluster: shard map is empty")
	}
	seen := make(map[string]bool, len(shards))
	for _, sh := range shards {
		if sh.Name == "" || sh.URL == "" || sh.JournalDir == "" {
			return fmt.Errorf("cluster: shard %+v: name, url, and journal_dir are all required", sh)
		}
		if seen[sh.Name] {
			return fmt.Errorf("cluster: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
	}
	return nil
}
