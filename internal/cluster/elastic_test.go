package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/service"
)

// postAdminT POSTs one admin request and decodes the JSON response into out.
func postAdminT(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// planAll seeds every session's exactly-once cache at seq and records the
// released decision bytes.
func planAll(t *testing.T, client *service.Client, ids []string, seq int64) map[string]string {
	t.Helper()
	snap := readySnapshot(smallWorkflow(3))
	out := make(map[string]string, len(ids))
	for _, id := range ids {
		pr, err := client.Plan(context.Background(), id, seq, snap)
		if err != nil {
			t.Fatalf("plan %s: %v", id, err)
		}
		b, _ := json.Marshal(pr.Decision)
		out[id] = string(b)
	}
	return out
}

// requireCachedDecisions replays seq for every session through the router and
// requires the byte-identical decision the original shard released.
func requireCachedDecisions(t *testing.T, client *service.Client, want map[string]string, seq int64) {
	t.Helper()
	snap := readySnapshot(smallWorkflow(3))
	for id, decision := range want {
		pr, err := client.Plan(context.Background(), id, seq, snap)
		if err != nil {
			t.Fatalf("replay %s: %v", id, err)
		}
		b, _ := json.Marshal(pr.Decision)
		if string(b) != decision {
			t.Fatalf("session %s: decision changed across the topology change:\n got %s\nwant %s", id, b, decision)
		}
	}
}

// TestDrainMovesSessions is the graceful-decommission test: draining a shard
// migrates every session it hosts to the surviving peers, removes it from
// the ring, and preserves each session's exactly-once plan cache
// byte-identically.
func TestDrainMovesSessions(t *testing.T) {
	rt, rts, fleet := startFleet(t, 3, RouterConfig{})
	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 24)
	decisions := planAll(t, client, ids, 1)

	// Drain a shard that actually hosts sessions.
	var donor *testShard
	for _, f := range fleet {
		if f.srv.Store().Len() > 0 {
			donor = f
			break
		}
	}
	if donor == nil {
		t.Fatal("no shard hosts a session")
	}
	hosted := donor.srv.Store().Len()

	var dr DrainResult
	resp := postAdminT(t, rts.URL+"/v1/admin/drain", map[string]string{"shard": donor.shard.Name}, &dr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain answered %d", resp.StatusCode)
	}
	if dr.SessionsMoved < hosted {
		t.Errorf("drain moved %d sessions, donor hosted %d", dr.SessionsMoved, hosted)
	}
	if got := donor.srv.Store().Len(); got != 0 {
		t.Errorf("drained shard still hosts %d sessions", got)
	}
	if c := rt.Counters(); c.DrainsTotal != 1 || c.ShardsUp != 2 {
		t.Errorf("counters after drain: drains=%d shards_up=%d, want 1 and 2", c.DrainsTotal, c.ShardsUp)
	}
	for _, name := range rt.Ring().Shards() {
		if name == donor.shard.Name {
			t.Errorf("drained shard %s still on the ring", name)
		}
	}

	// Every session answers with its cached decision, and new creates avoid
	// the departed member.
	requireCachedDecisions(t, client, decisions, 1)
	for _, id := range createSessions(t, client, 8) {
		if sh, st := rt.resolve(id); st != routeOK || sh.Name == donor.shard.Name {
			t.Errorf("new session %s resolved to %s (state %v)", id, sh.Name, st)
		}
	}

	// Draining a shard that is not up is refused.
	resp = postAdminT(t, rts.URL+"/v1/admin/drain", map[string]string{"shard": donor.shard.Name}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("re-drain answered %d, want 409", resp.StatusCode)
	}
}

// TestDrainLastShardRefused pins that the final live shard cannot drain out:
// there is nowhere for its sessions to go.
func TestDrainLastShardRefused(t *testing.T) {
	_, rts, fleet := startFleet(t, 1, RouterConfig{})
	resp := postAdminT(t, rts.URL+"/v1/admin/drain", map[string]string{"shard": fleet[0].shard.Name}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("draining the last shard answered %d, want 409", resp.StatusCode)
	}
}

// TestJoinRebalances is the join-time rebalancing test: a brand-new shard
// joins a live 2-shard cluster, only the minimally-remapped key ranges
// migrate onto it, and every moved session's exactly-once cache survives.
func TestJoinRebalances(t *testing.T) {
	rt, rts, _ := startFleet(t, 2, RouterConfig{})
	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 24)
	decisions := planAll(t, client, ids, 1)

	// A third shard, started out-of-band (as an operator would).
	jdir := filepath.Join(t.TempDir(), "s9")
	newSrv := service.New(service.Config{ShardMode: true, JournalDir: jdir})
	ts := httptest.NewServer(newSrv.Handler())
	t.Cleanup(ts.Close)

	var jr JoinResult
	resp := postAdminT(t, rts.URL+"/v1/admin/join", map[string]string{
		"name": "s9", "url": ts.URL, "journal_dir": jdir,
	}, &jr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join answered %d", resp.StatusCode)
	}
	if jr.Rejoined {
		t.Error("a brand-new shard reported rejoined=true")
	}
	if c := rt.Counters(); c.JoinsTotal != 1 || c.ShardsUp != 3 {
		t.Errorf("counters after join: joins=%d shards_up=%d, want 1 and 3", c.JoinsTotal, c.ShardsUp)
	}

	// The ring now includes the newcomer, and the minimally-remapped
	// sessions actually moved there.
	onRing := false
	for _, name := range rt.Ring().Shards() {
		onRing = onRing || name == "s9"
	}
	if !onRing {
		t.Fatal("joined shard not on the ring")
	}
	if got := newSrv.Store().Len(); got == 0 {
		t.Error("no session migrated to the joined shard (24 sessions over a 2→3 rebalance should remap some)")
	} else if got != jr.SessionsMoved {
		t.Errorf("joined shard hosts %d sessions, join reported %d moved", got, jr.SessionsMoved)
	}

	requireCachedDecisions(t, client, decisions, 1)
}

// TestRejoinAfterFailoverFencing is the acceptance fencing test: a shard is
// killed, its sessions fail over to a peer, and a RESTARTED process on the
// same journal directory must come up empty (its WALs are fenced) while the
// STALE still-running process is refused when it tries to release a decision
// — no double-serve from either incarnation. The restarted process then
// rejoins by name and serves again through the authoritative path.
func TestRejoinAfterFailoverFencing(t *testing.T) {
	rt, rts, fleet := startFleet(t, 3, RouterConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		FailThreshold:     2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 18)
	decisions := planAll(t, client, ids, 1)

	victim := -1
	for i, f := range fleet {
		if f.srv.Store().Len() > 0 {
			victim = i
			break
		}
	}
	if victim == -1 {
		t.Fatal("no shard hosts a session")
	}
	staleSrv := fleet[victim].srv // keeps running in-process: the stale incarnation
	victimName := fleet[victim].shard.Name
	var victimSession string
	for _, id := range ids {
		if _, err := staleSrv.Store().Get(id); err == nil {
			victimSession = id
			break
		}
	}

	go rt.Run(ctx)
	fleet[victim].ts.CloseClientConnections()
	fleet[victim].ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Counters().HandoffSessionsTotal == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rt.Counters().HandoffSessionsTotal == 0 {
		t.Fatal("failover never completed")
	}

	// A restarted process on the same journal dir comes up EMPTY: every WAL
	// was fenced by the adoption.
	freshSrv := service.New(service.Config{ShardMode: true, JournalDir: fleet[victim].shard.JournalDir})
	if got := freshSrv.Store().Len(); got != 0 {
		t.Fatalf("restarted shard resurrected %d fenced sessions", got)
	}

	// The STALE incarnation must withhold new decisions: a direct plan at a
	// fresh seq against its still-live handler is refused with
	// session_fenced, not answered.
	snap := readySnapshot(smallWorkflow(3))
	body, err := monitor.AppendSnapshotJSON(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+victimSession+"/plan", bytes.NewReader(body))
	req.Header.Set(service.PlanSeqHeader, "2")
	rec := httptest.NewRecorder()
	staleSrv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale shard answered plan with %d, want 503 (double-serve!)", rec.Code)
	}
	var eb service.ErrorBody
	if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != service.CodeSessionFenced {
		t.Errorf("stale shard error code %q, want %q", eb.Code, service.CodeSessionFenced)
	}

	// Rejoin-by-name: the fresh process takes the victim's place on the ring
	// (new URL), and the cluster serves every session again — cached
	// decisions intact.
	fts := httptest.NewServer(freshSrv.Handler())
	t.Cleanup(fts.Close)
	var jr JoinResult
	var resp *http.Response
	for i := 0; i < 100; i++ { // the member may still be mid-failover
		resp = postAdminT(t, rts.URL+"/v1/admin/join", map[string]string{
			"name": victimName, "url": fts.URL, "journal_dir": fleet[victim].shard.JournalDir,
		}, &jr)
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rejoin answered %d", resp.StatusCode)
	}
	if !jr.Rejoined {
		t.Error("rejoin-by-name reported rejoined=false")
	}
	if up := rt.Counters().ShardsUp; up != 3 {
		t.Errorf("shards_up = %d after rejoin, want 3", up)
	}
	requireCachedDecisions(t, client, decisions, 1)
}

// TestFailoverRetryPicksNewAdopter pins that a failover whose chosen adopter
// is itself dead re-selects a live peer: with both s0 and s1 killed, both
// failovers must terminate on s2 — whichever order the deaths are detected,
// an adoption attempt against the dead next-in-order peer fails and the
// retry walks on.
func TestFailoverRetryPicksNewAdopter(t *testing.T) {
	rt, rts, fleet := startFleet(t, 3, RouterConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		FailThreshold:     2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 18)
	decisions := planAll(t, client, ids, 1)

	go rt.Run(ctx)
	for _, i := range []int{0, 1} {
		fleet[i].ts.CloseClientConnections()
		fleet[i].ts.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rt.members.mu.Lock()
		done := rt.members.members["s0"].state == memberFailed && rt.members.members["s1"].state == memberFailed
		rt.members.mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, name := range []string{"s0", "s1"} {
		sh, st := rt.members.follow(name)
		if st != routeOK || sh.Name != "s2" {
			t.Fatalf("%s routes to %q (state %v), want the sole survivor s2", name, sh.Name, st)
		}
	}
	// Every session answers from the survivor with its cache intact.
	retryClient := service.NewClient(rts.URL, service.WithRetry(service.DefaultChaosRetry()))
	snap := readySnapshot(smallWorkflow(3))
	for id, want := range decisions {
		pr, err := retryClient.Plan(context.Background(), id, 1, snap)
		if err != nil {
			t.Fatalf("session %s lost in double failover: %v", id, err)
		}
		b, _ := json.Marshal(pr.Decision)
		if string(b) != want {
			t.Fatalf("session %s: decision changed: %s != %s", id, b, want)
		}
	}
}

// TestPickAdopterUnknownDead pins the explicit error for a dead shard that is
// missing from the membership order — a table-corruption-class bug must not
// silently adopt from position zero.
func TestPickAdopterUnknownDead(t *testing.T) {
	rt, _, _ := startFleet(t, 2, RouterConfig{})
	_, _, err := rt.members.pickAdopter("ghost")
	if err == nil || !strings.Contains(err.Error(), "not in the membership order") {
		t.Fatalf("pickAdopter(ghost) = %v, want a membership-order error", err)
	}
}
