package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// memberState is the lifecycle of one shard in the membership table. PR 7's
// one-way up → recovering → failed lifecycle is now a full elastic state
// machine: shards drain out gracefully (up → draining → left), join or
// rejoin by name (unknown/left/failed → joining → up), and still fail over
// on unplanned death (any serving state → recovering → failed).
type memberState int

const (
	memberUp memberState = iota
	// memberRecovering: declared dead, journal handoff not yet complete.
	// Requests for its sessions answer 503 shard_recovering.
	memberRecovering
	// memberFailed: handoff complete; requests follow the adopter pointer.
	memberFailed
	// memberDraining: being decommissioned. Takes no new sessions; existing
	// sessions keep answering here until the drain migration moves each to
	// its post-drain owner.
	memberDraining
	// memberLeft: drained out. Off the placement ring, owns nothing; the
	// table keeps the entry so the name can rejoin later.
	memberLeft
	// memberJoining: being added (or re-added) to the ring. Serves whatever
	// sessions the join migration has already handed it, but takes no new
	// creates until the join commits.
	memberJoining
	// memberPartitioned: unreachable from this router but confirmed alive by
	// a peer relay probe. NOT failed over — its journals are live and fencing
	// them would split-brain; its sessions answer 503 shard_partitioned until
	// the link heals (direct probe answers again) or the peers lose it too
	// (escalates to a real death declaration).
	memberPartitioned
)

func (s memberState) String() string {
	switch s {
	case memberUp:
		return "up"
	case memberRecovering:
		return "recovering"
	case memberFailed:
		return "failed"
	case memberDraining:
		return "draining"
	case memberLeft:
		return "left"
	case memberJoining:
		return "joining"
	case memberPartitioned:
		return "partitioned"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// serving reports whether a member in this state answers session traffic
// (and is therefore heartbeat-probed and eligible to fail over).
func (s memberState) serving() bool {
	return s == memberUp || s == memberDraining || s == memberJoining
}

type member struct {
	shard  Shard
	state  memberState
	misses int
	// adopter points at the member now serving this member's sessions after
	// a death failover (state memberFailed). Chains are followed
	// transitively — the adopter may itself have failed over later.
	adopter string
	// comebacks counts consecutive successful probes of a failed member —
	// its process answering again at the recorded URL. At FailThreshold the
	// prober auto-rejoins it; rejoining guards against spawning twice.
	comebacks int
	rejoining bool
	// confirming guards against stacking peer-confirmation probes: one
	// in-flight confirmDown per member at a time.
	confirming bool
}

// membership is the router's shard liveness table, failover engine, and —
// since the control plane went elastic — the owner of the placement ring and
// of the per-session routing overrides a planned migration leaves behind.
// One mutex guards the whole table; routing reads are a map lookup and a
// state switch, far off any hot path the shards themselves wouldn't
// dominate.
type membership struct {
	cfg RouterConfig

	mu    sync.Mutex
	order []string
	// members holds every name ever seen, including left and failed ones
	// (their entries keep adopter pointers and allow rejoin-by-name).
	members map[string]*member
	// ring is the current placement ring; drain and join swap it. ringNames
	// tracks the names it was built from, in construction order.
	ring      *Ring
	ringNames []string
	// overrides maps session ID → member name for sessions a planned
	// migration moved off their ring resolution. Resolved through the same
	// adopter-chasing as ring owners, so an override target that later dies
	// still routes to its adopter. Compacted when ring resolution catches
	// up (after the op's ring swap) and on session deletion.
	overrides map[string]string
	// migrating holds session IDs mid-handoff: exported from their donor
	// but not yet adopted by their target. Requests answer 503 and retry.
	migrating map[string]bool
	// epoch is the cluster fencing epoch, bumped once per topology
	// operation (failover, drain, join) and carried on every adopt/export
	// so shards can reject requests from a stale view of the world.
	epoch int64
	// graceUntil extends the elastic 404 grace window (see inGrace) past
	// the end of an operation, covering the repair pass.
	graceUntil time.Time
	ctx        context.Context

	// opMu serializes drain/join operations; concurrent admin requests get
	// 409 rather than interleaved migrations.
	opMu     sync.Mutex
	opActive atomic.Bool

	failovers       atomic.Int64
	handoffSessions atomic.Int64
	drains          atomic.Int64
	joins           atomic.Int64
	migrated        atomic.Int64
	// partitionsSuspected counts serving→partitioned transitions (a peer
	// confirmed a router-unreachable shard alive); partitionsHealed counts
	// partitioned→up restorations.
	partitionsSuspected atomic.Int64
	partitionsHealed    atomic.Int64
}

func newMembership(cfg RouterConfig, ring *Ring, names []string) *membership {
	ms := &membership{
		cfg:       cfg,
		order:     make([]string, 0, len(cfg.Shards)),
		members:   make(map[string]*member, len(cfg.Shards)),
		ring:      ring,
		ringNames: append([]string(nil), names...),
		overrides: make(map[string]string),
		migrating: make(map[string]bool),
	}
	for _, sh := range cfg.Shards {
		ms.order = append(ms.order, sh.Name)
		ms.members[sh.Name] = &member{shard: sh}
	}
	return ms
}

// currentRing returns the placement ring (swapped by drain/join).
func (ms *membership) currentRing() *Ring {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ring
}

// nextEpoch issues a fresh fencing epoch for one topology operation.
func (ms *membership) nextEpoch() int64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.epoch++
	return ms.epoch
}

// follow resolves a member name to the shard currently serving its sessions,
// chasing adopter pointers across completed handoffs.
func (ms *membership) follow(name string) (Shard, routeState) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.followLocked(name)
}

func (ms *membership) followLocked(name string) (Shard, routeState) {
	for hops := 0; hops <= len(ms.order); hops++ {
		m := ms.members[name]
		if m == nil {
			return Shard{}, routeRecovering
		}
		switch {
		case m.state.serving():
			return m.shard, routeOK
		case m.state == memberFailed && m.adopter != "":
			name = m.adopter
		case m.state == memberPartitioned:
			return m.shard, routePartitioned
		default:
			return m.shard, routeRecovering
		}
	}
	return Shard{}, routeRecovering
}

// resolveSession maps a session ID to the shard currently serving it: a
// migration override when one exists, else the ring owner, then across
// adopter chains. A session mid-migration answers routeRecovering until its
// adopt lands.
func (ms *membership) resolveSession(id string) (Shard, routeState) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.resolveSessionLocked(id)
}

func (ms *membership) resolveSessionLocked(id string) (Shard, routeState) {
	if ms.migrating[id] {
		return Shard{}, routeRecovering
	}
	name, ok := ms.overrides[id]
	if !ok {
		name = ms.ring.Owner(id)
	}
	return ms.followLocked(name)
}

// resolveCreate places a NEW session: the ring owner followed across
// adopters, but only a fully-up terminal accepts creates — draining members
// are leaving and joining members aren't committed yet, so the router
// redraws the ID instead.
func (ms *membership) resolveCreate(id string) (Shard, routeState) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	sh, st := ms.followLocked(ms.ring.Owner(id))
	if st != routeOK {
		return Shard{}, routeRecovering
	}
	if m := ms.members[sh.Name]; m == nil || m.state != memberUp {
		return Shard{}, routeRecovering
	}
	return sh, routeOK
}

// ownerName reports the ring owner's name for error messages.
func (ms *membership) ownerName(id string) string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ring.Owner(id)
}

// dropOverride forgets a session's migration override (deleted or truly
// gone sessions must not pin table entries forever).
func (ms *membership) dropOverride(id string) {
	ms.mu.Lock()
	delete(ms.overrides, id)
	ms.mu.Unlock()
}

// Run probes shard liveness until ctx is canceled. Failover goroutines and
// admin-triggered migrations inherit ctx.
func (rt *Router) Run(ctx context.Context) {
	rt.members.run(ctx)
}

func (ms *membership) run(ctx context.Context) {
	ms.mu.Lock()
	ms.ctx = ctx
	ms.mu.Unlock()
	t := time.NewTicker(ms.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ms.probeAll(ctx)
		}
	}
}

// opCtx is the context long-running elastic operations run under: the
// router's Run context when available (migrations must survive the admin
// HTTP request that triggered them), else Background.
func (ms *membership) opCtx() context.Context {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.ctx != nil {
		return ms.ctx
	}
	return context.Background()
}

// probeAll heartbeats every serving member concurrently and waits for the
// round, so one slow shard cannot delay another's death detection by more
// than the probe timeout. Failed members are probed too: a process that
// comes back at its recorded URL (supervisor restart, healed partition)
// earns an automatic rejoin after FailThreshold consecutive answers.
func (ms *membership) probeAll(ctx context.Context) {
	ms.mu.Lock()
	targets := make([]Shard, 0, len(ms.order))
	for _, name := range ms.order {
		if m := ms.members[name]; m.state.serving() || m.state == memberFailed || m.state == memberPartitioned {
			targets = append(targets, m.shard)
		}
	}
	ms.mu.Unlock()

	var wg sync.WaitGroup
	for _, sh := range targets {
		wg.Add(1)
		go func(sh Shard) {
			defer wg.Done()
			ms.probe(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

// probe heartbeats one shard's readiness endpoint. /readyz rather than
// /healthz: a shard mid-replay or draining answers 503 there, which counts as
// alive-but-not-ready (noteBusy) — it neither accrues death misses nor earns
// comeback credit, so a replaying shard is never routed to nor rejoined
// early. Only a transport error or a non-ready non-503 answer is a miss.
func (ms *membership) probe(ctx context.Context, sh Shard) {
	pctx, cancel := context.WithTimeout(ctx, ms.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.URL+"/readyz", nil)
	if err != nil {
		ms.noteFailure(sh.Name)
		return
	}
	req.Header.Set(service.RouterIdentityHeader, "1")
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		ms.noteFailure(sh.Name)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		ms.noteSuccess(sh.Name)
	case http.StatusServiceUnavailable:
		ms.noteBusy(sh.Name)
	default:
		ms.noteFailure(sh.Name)
	}
}

func (ms *membership) noteSuccess(name string) {
	ms.mu.Lock()
	m := ms.members[name]
	if m == nil {
		ms.mu.Unlock()
		return
	}
	if m.state.serving() {
		m.misses = 0
		ms.mu.Unlock()
		return
	}
	if m.state == memberPartitioned {
		// The router can reach it directly again: the partition healed.
		m.state = memberUp
		m.misses = 0
		ms.partitionsHealed.Add(1)
		ms.mu.Unlock()
		ms.cfg.Logf("wire-serve route: partition to shard %s healed; restoring it to up", name)
		return
	}
	if m.state != memberFailed {
		ms.mu.Unlock()
		return
	}
	// A failed member answering again: require a full threshold of
	// consecutive answers (hysteresis against flap) before rejoining it.
	m.comebacks++
	if m.comebacks < ms.cfg.FailThreshold || m.rejoining {
		ms.mu.Unlock()
		return
	}
	m.rejoining = true
	sh := m.shard
	ms.mu.Unlock()
	ms.cfg.Logf("wire-serve route: failed shard %s is answering health probes again; auto-rejoining", name)
	go ms.autoRejoin(sh)
}

// autoRejoin puts a recovered failed member back on the ring via the normal
// join path (minimal migration, fresh fencing epoch). Errors are expected —
// another topology op may hold the lock, or an operator may have joined it
// first — and simply leave the member eligible for the next probe round.
func (ms *membership) autoRejoin(sh Shard) {
	res, err := ms.join(ms.opCtx(), sh)
	ms.mu.Lock()
	if m := ms.members[sh.Name]; m != nil {
		m.rejoining = false
		m.comebacks = 0
	}
	ms.mu.Unlock()
	if err != nil {
		ms.cfg.Logf("wire-serve route: auto-rejoin of %s failed: %v; will retry while it keeps answering", sh.Name, err)
		return
	}
	ms.cfg.Logf("wire-serve route: auto-rejoined %s: %d session(s) moved back (epoch %d)", sh.Name, res.SessionsMoved, res.Epoch)
}

// noteBusy records an alive-but-not-ready answer (503 from /readyz: the
// shard is draining or replaying an adopt). It clears death misses — the
// process is demonstrably up — but earns no comeback credit: auto-rejoining
// a failed member mid-replay would route traffic into its 503s.
func (ms *membership) noteBusy(name string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m := ms.members[name]
	if m == nil {
		return
	}
	if m.state.serving() || m.state == memberPartitioned {
		m.misses = 0
	}
}

// noteFailure records one heartbeat miss (or proxy transport error). At the
// threshold the shard is NOT declared dead outright: a confirmation probe is
// relayed through a surviving peer first, and only when no peer can reach it
// either does the journal handoff start. A shard peers can still reach is
// partitioned from the router, not dead — fencing it would orphan a live
// writer's sessions behind a healable link fault. Draining and joining
// members die like up ones — kill-during-drain falls back to the
// unplanned-death path. A partitioned member keeps missing direct probes;
// at each fresh threshold the confirmation re-runs, so a partition that
// widens (peers lose it too) escalates to a real failover.
func (ms *membership) noteFailure(name string) {
	ms.mu.Lock()
	m := ms.members[name]
	if m == nil || !(m.state.serving() || m.state == memberPartitioned) {
		if m != nil && m.state == memberFailed {
			m.comebacks = 0
		}
		ms.mu.Unlock()
		return
	}
	m.misses++
	if m.misses < ms.cfg.FailThreshold || m.confirming {
		ms.mu.Unlock()
		return
	}
	m.confirming = true
	m.misses = 0
	was := m.state
	ctx := ms.ctx
	ms.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	go ms.confirmDown(ctx, name, was)
}

// confirmDown asks the surviving peers whether they can reach a shard the
// router has lost. Reachable → the member is partitioned-from-me: withhold
// failover, answer its sessions 503 shard_partitioned, keep probing.
// Unreachable from everyone → declared dead, journal handoff starts.
func (ms *membership) confirmDown(ctx context.Context, name string, was memberState) {
	reachable := ms.peerConfirm(ctx, name)
	ms.mu.Lock()
	m := ms.members[name]
	if m == nil {
		ms.mu.Unlock()
		return
	}
	m.confirming = false
	if m.state != was {
		// The member moved on while we confirmed (healed, drained, or an
		// operator intervened); this verdict is stale.
		ms.mu.Unlock()
		return
	}
	if reachable {
		if m.state != memberPartitioned {
			m.state = memberPartitioned
			ms.partitionsSuspected.Add(1)
			ms.mu.Unlock()
			ms.cfg.Logf("wire-serve route: shard %s unreachable from the router but confirmed alive via a peer; suspecting a partition (failover withheld)", name)
			return
		}
		ms.mu.Unlock()
		return
	}
	m.state = memberRecovering
	ms.mu.Unlock()
	ms.failovers.Add(1)
	ms.cfg.Logf("wire-serve route: shard %s (%s) declared dead after %d consecutive failures and no peer confirmation; starting journal handoff", name, was, ms.cfg.FailThreshold)
	go ms.failover(ctx, name)
}

// peerConfirm relays a reachability probe for the suspect through each up
// peer in membership order, stopping at the first peer that reports the
// suspect answered HTTP at all (any status — a replaying shard is alive).
// No up peers, or no peer able to reach it, means unconfirmed: false.
func (ms *membership) peerConfirm(ctx context.Context, suspect string) bool {
	ms.mu.Lock()
	sm := ms.members[suspect]
	if sm == nil {
		ms.mu.Unlock()
		return false
	}
	target := sm.shard.URL + "/readyz"
	peers := make([]string, 0, len(ms.order))
	for _, n := range ms.order {
		if n == suspect {
			continue
		}
		if m := ms.members[n]; m != nil && m.state == memberUp {
			peers = append(peers, m.shard.URL)
		}
	}
	ms.mu.Unlock()
	body, err := json.Marshal(service.ProbeRequest{URL: target})
	if err != nil {
		return false
	}
	for _, peer := range peers {
		pctx, cancel := context.WithTimeout(ctx, ms.cfg.HeartbeatTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodPost, peer+"/v1/admin/probe", bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.RouterIdentityHeader, "1")
		resp, err := ms.cfg.Client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		var pr service.ProbeResponse
		derr := json.NewDecoder(resp.Body).Decode(&pr)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		if derr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if pr.Reachable {
			return true
		}
	}
	return false
}

// pickAdopter chooses the surviving peer that inherits a dead shard's
// journal directory: the first live shard after the dead one in membership
// order (wrapping), so the choice is deterministic and spreads consecutive
// deaths across the fleet. The dead shard missing from the order is a
// table-corruption-class bug, reported as an explicit error rather than
// silently adopting from position zero.
func (ms *membership) pickAdopter(dead string) (adopter string, dirs []string, err error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	idx := -1
	for i, n := range ms.order {
		if n == dead {
			idx = i
			break
		}
	}
	if idx == -1 {
		return "", nil, fmt.Errorf("cluster: dead shard %q is not in the membership order %v", dead, ms.order)
	}
	deadM := ms.members[dead]
	if deadM == nil {
		return "", nil, fmt.Errorf("cluster: dead shard %q has no membership entry", dead)
	}
	for off := 1; off <= len(ms.order); off++ {
		name := ms.order[(idx+off)%len(ms.order)]
		if name == dead {
			continue
		}
		if m := ms.members[name]; m != nil && m.state == memberUp {
			return name, []string{deadM.shard.JournalDir}, nil
		}
	}
	return "", nil, nil
}

// failover hands the dead shard's journal directory to a surviving peer and
// re-points routing at it. It retries (re-selecting the adopter each
// attempt — the first choice may itself die) until the handoff lands or ctx
// ends; until then the dead shard's sessions answer 503 shard_recovering.
// Adoption copies each WAL into the adopter's own journal directory and
// fences the source, so a later failover of the adopter moves everything it
// holds, and a stale process still appending to the source is rejected.
func (ms *membership) failover(ctx context.Context, dead string) {
	epoch := ms.nextEpoch()
	attempted := false
	for ctx.Err() == nil {
		// A join (operator, auto-rejoin, or cluster-down bootstrap) may have
		// taken the member over while this goroutine slept; adopting its
		// journal now would fence a live writer. Stand down.
		ms.mu.Lock()
		dm := ms.members[dead]
		stillDead := dm != nil && dm.state == memberRecovering
		ms.mu.Unlock()
		if !stillDead {
			ms.cfg.Logf("wire-serve route: failover of %s stood down: member no longer awaiting handoff", dead)
			return
		}
		// Re-probe the "dead" shard once more before touching its journal:
		// a scheduling stall can push a perfectly healthy member past the
		// fail threshold (it can even flap every member at once, and with
		// no recovering→up path the fleet would wedge in "no live peer"
		// forever). A shard that answers here was declared spuriously —
		// revive it instead of fencing it out. Only safe while no adoption
		// was attempted: a timed-out attempt may have fenced part of the
		// journal mid-copy, after which the member must stay down until a
		// full handoff lands.
		if !attempted && ms.reviveIfHealthy(ctx, dead) {
			return
		}
		adopter, dirs, err := ms.pickAdopter(dead)
		if err != nil {
			ms.cfg.Logf("wire-serve route: failover of %s aborted: %v", dead, err)
			return
		}
		if adopter == "" {
			ms.cfg.Logf("wire-serve route: no live peer to adopt %s; cluster is down, retrying", dead)
			sleepCtx(ctx, ms.cfg.HeartbeatInterval)
			continue
		}
		attempted = true
		n, err := ms.adopt(ctx, adopter, service.AdoptRequest{JournalDirs: dirs, From: dead, Epoch: epoch})
		if err != nil {
			ms.cfg.Logf("wire-serve route: handoff %s -> %s failed: %v; retrying", dead, adopter, err)
			sleepCtx(ctx, ms.cfg.HeartbeatInterval)
			// A drain or join that ran since we started may have advanced
			// the cluster past our epoch, which makes it permanently stale
			// (adopters reject it with 409). Claim a fresh one per retry.
			epoch = ms.nextEpoch()
			continue
		}
		ms.mu.Lock()
		deadM := ms.members[dead]
		if deadM.state == memberRecovering {
			deadM.adopter = adopter
			deadM.state = memberFailed
		}
		ms.mu.Unlock()
		ms.handoffSessions.Add(int64(n))
		ms.cfg.Logf("wire-serve route: handoff complete: %s adopted %d session(s) from %s (epoch %d)", adopter, n, dead, epoch)
		return
	}
}

// reviveIfHealthy re-probes a member declared dead and, if it answers its
// health check while still awaiting an adopter, restores it to up. A member
// that was draining or joining when it flapped comes back as plain up; if
// the interrupted op left it off the ring, a retried join repairs that. The
// caller must ensure no adoption was ever attempted for this declaration.
func (ms *membership) reviveIfHealthy(ctx context.Context, dead string) bool {
	ms.mu.Lock()
	m := ms.members[dead]
	if m == nil || m.state != memberRecovering {
		ms.mu.Unlock()
		return false
	}
	sh := m.shard
	ms.mu.Unlock()
	if err := ms.checkHealth(ctx, sh); err != nil {
		return false
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m := ms.members[dead]; m != nil && m.state == memberRecovering {
		m.state = memberUp
		m.misses = 0
		ms.cfg.Logf("wire-serve route: shard %s answered its health probe with no adopter available; reviving it (spurious death declaration)", dead)
		return true
	}
	return false
}

// adopt POSTs a handoff to the adopter's admin endpoint and returns how
// many sessions it now hosts of the offered set.
func (ms *membership) adopt(ctx context.Context, adopter string, areq service.AdoptRequest) (int, error) {
	ms.mu.Lock()
	m := ms.members[adopter]
	if m == nil {
		ms.mu.Unlock()
		return 0, fmt.Errorf("adopt: unknown shard %q", adopter)
	}
	url := m.shard.URL
	ms.mu.Unlock()
	body, err := json.Marshal(areq)
	if err != nil {
		return 0, err
	}
	actx, cancel := context.WithTimeout(ctx, ms.cfg.AdoptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url+"/v1/admin/adopt", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.RouterIdentityHeader, "1")
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("adopt: HTTP %d: %s", resp.StatusCode, b)
	}
	var ar service.AdoptResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, err
	}
	return ar.Sessions, nil
}

// shardsUp counts fully-up members (draining and joining are transitional
// and excluded — shards_up regaining its full count is the rolling-restart
// smoke's completion signal).
func (ms *membership) shardsUp() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	n := 0
	for _, m := range ms.members {
		if m.state == memberUp {
			n++
		}
	}
	return n
}

// status snapshots the membership table for /metrics and /healthz.
func (ms *membership) status() map[string]ShardStatus {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make(map[string]ShardStatus, len(ms.members))
	for name, m := range ms.members {
		var dirs []string
		if m.state.serving() || m.state == memberRecovering || m.state == memberPartitioned {
			dirs = []string{m.shard.JournalDir}
		}
		out[name] = ShardStatus{
			URL:         m.shard.URL,
			State:       m.state.String(),
			Adopter:     m.adopter,
			JournalDirs: dirs,
		}
	}
	return out
}

// upShards snapshots the serving members' shards (metrics aggregation).
func (ms *membership) upShards() []Shard {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Shard, 0, len(ms.order))
	for _, name := range ms.order {
		if m := ms.members[name]; m.state.serving() {
			out = append(out, m.shard)
		}
	}
	return out
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
