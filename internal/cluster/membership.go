package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// memberState is the lifecycle of one shard in the membership table. There
// is no rejoin: the shard map is static, so the only transitions are
// up → recovering (declared dead) → failed (journals handed off). A restarted
// shard process re-enters service as the target of a *new* deployment's
// shard map, not by resurrecting its old identity mid-run.
type memberState int

const (
	memberUp memberState = iota
	// memberRecovering: declared dead, journal handoff not yet complete.
	// Requests for its sessions answer 503 shard_recovering.
	memberRecovering
	// memberFailed: handoff complete; requests follow the adopter pointer.
	memberFailed
)

func (s memberState) String() string {
	switch s {
	case memberUp:
		return "up"
	case memberRecovering:
		return "recovering"
	case memberFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

type member struct {
	shard   Shard
	state   memberState
	misses  int
	adopter string
	// dirs are the journal directories this member currently owns: its own,
	// plus every directory it adopted. They move as a unit on failover, so a
	// twice-failed-over session is still found by whoever holds its WAL.
	dirs []string
}

// membership is the router's shard liveness table and failover engine. One
// mutex guards the whole table — routing reads are a map lookup and a state
// switch, far off any hot path the shards themselves wouldn't dominate.
type membership struct {
	cfg   RouterConfig
	order []string

	mu      sync.Mutex
	members map[string]*member
	ctx     context.Context

	failovers       atomic.Int64
	handoffSessions atomic.Int64
}

func newMembership(cfg RouterConfig) *membership {
	ms := &membership{
		cfg:     cfg,
		order:   make([]string, 0, len(cfg.Shards)),
		members: make(map[string]*member, len(cfg.Shards)),
	}
	for _, sh := range cfg.Shards {
		ms.order = append(ms.order, sh.Name)
		ms.members[sh.Name] = &member{shard: sh, dirs: []string{sh.JournalDir}}
	}
	return ms
}

// follow resolves a ring owner to the shard currently serving its sessions,
// chasing adopter pointers across completed handoffs.
func (ms *membership) follow(name string) (Shard, routeState) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for hops := 0; hops <= len(ms.order); hops++ {
		m := ms.members[name]
		if m == nil {
			return Shard{}, routeRecovering
		}
		switch m.state {
		case memberUp:
			return m.shard, routeOK
		case memberFailed:
			name = m.adopter
		default:
			return m.shard, routeRecovering
		}
	}
	return Shard{}, routeRecovering
}

// Run probes shard liveness until ctx is canceled. Failover goroutines it
// spawns inherit ctx.
func (rt *Router) Run(ctx context.Context) {
	rt.members.run(ctx)
}

func (ms *membership) run(ctx context.Context) {
	ms.mu.Lock()
	ms.ctx = ctx
	ms.mu.Unlock()
	t := time.NewTicker(ms.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ms.probeAll(ctx)
		}
	}
}

// probeAll heartbeats every live member concurrently and waits for the
// round, so one slow shard cannot delay another's death detection by more
// than the probe timeout.
func (ms *membership) probeAll(ctx context.Context) {
	ms.mu.Lock()
	targets := make([]Shard, 0, len(ms.order))
	for _, name := range ms.order {
		if m := ms.members[name]; m.state == memberUp {
			targets = append(targets, m.shard)
		}
	}
	ms.mu.Unlock()

	var wg sync.WaitGroup
	for _, sh := range targets {
		wg.Add(1)
		go func(sh Shard) {
			defer wg.Done()
			ms.probe(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

func (ms *membership) probe(ctx context.Context, sh Shard) {
	pctx, cancel := context.WithTimeout(ctx, ms.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.URL+"/healthz", nil)
	if err != nil {
		ms.noteFailure(sh.Name)
		return
	}
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		ms.noteFailure(sh.Name)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ms.noteFailure(sh.Name)
		return
	}
	ms.noteSuccess(sh.Name)
}

func (ms *membership) noteSuccess(name string) {
	ms.mu.Lock()
	if m := ms.members[name]; m != nil && m.state == memberUp {
		m.misses = 0
	}
	ms.mu.Unlock()
}

// noteFailure records one heartbeat miss (or proxy transport error) and
// declares the shard dead at the threshold, spawning the failover.
func (ms *membership) noteFailure(name string) {
	ms.mu.Lock()
	m := ms.members[name]
	if m == nil || m.state != memberUp {
		ms.mu.Unlock()
		return
	}
	m.misses++
	if m.misses < ms.cfg.FailThreshold {
		ms.mu.Unlock()
		return
	}
	m.state = memberRecovering
	misses := m.misses
	ctx := ms.ctx
	ms.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	ms.failovers.Add(1)
	ms.cfg.Logf("wire-serve route: shard %s declared dead after %d consecutive failures; starting journal handoff", name, misses)
	go ms.failover(ctx, name)
}

// pickAdopter chooses the surviving peer that inherits a dead shard's
// journals: the first live shard after the dead one in shard-map order
// (wrapping), so the choice is deterministic and spreads consecutive deaths
// across the fleet. It also snapshots the dead member's directory list under
// the same lock, so the handoff always moves a consistent set.
func (ms *membership) pickAdopter(dead string) (adopter string, dirs []string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	idx := 0
	for i, n := range ms.order {
		if n == dead {
			idx = i
			break
		}
	}
	for off := 1; off <= len(ms.order); off++ {
		name := ms.order[(idx+off)%len(ms.order)]
		if m := ms.members[name]; m != nil && m.state == memberUp {
			return name, append([]string(nil), ms.members[dead].dirs...)
		}
	}
	return "", nil
}

// failover hands the dead shard's journal directories to a surviving peer
// and re-points routing at it. It retries (re-selecting the adopter each
// attempt — the first choice may itself die) until the handoff lands or ctx
// ends; until then the dead shard's sessions answer 503 shard_recovering.
func (ms *membership) failover(ctx context.Context, dead string) {
	for ctx.Err() == nil {
		adopter, dirs := ms.pickAdopter(dead)
		if adopter == "" {
			ms.cfg.Logf("wire-serve route: no live peer to adopt %s; cluster is down, retrying", dead)
			sleepCtx(ctx, ms.cfg.HeartbeatInterval)
			continue
		}
		n, err := ms.adopt(ctx, adopter, dead, dirs)
		if err != nil {
			ms.cfg.Logf("wire-serve route: handoff %s -> %s failed: %v; retrying", dead, adopter, err)
			sleepCtx(ctx, ms.cfg.HeartbeatInterval)
			continue
		}
		ms.mu.Lock()
		deadM, adM := ms.members[dead], ms.members[adopter]
		adM.dirs = append(adM.dirs, deadM.dirs...)
		deadM.dirs = nil
		deadM.adopter = adopter
		deadM.state = memberFailed
		ms.mu.Unlock()
		ms.handoffSessions.Add(int64(n))
		ms.cfg.Logf("wire-serve route: handoff complete: %s adopted %d session(s) from %s", adopter, n, dead)
		return
	}
}

// adopt POSTs the handoff to the adopter's admin endpoint and returns how
// many sessions it resurrected.
func (ms *membership) adopt(ctx context.Context, adopter, dead string, dirs []string) (int, error) {
	ms.mu.Lock()
	url := ms.members[adopter].shard.URL
	ms.mu.Unlock()
	body, err := json.Marshal(service.AdoptRequest{JournalDirs: dirs, From: dead})
	if err != nil {
		return 0, err
	}
	actx, cancel := context.WithTimeout(ctx, ms.cfg.AdoptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url+"/v1/admin/adopt", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ms.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("adopt: HTTP %d: %s", resp.StatusCode, b)
	}
	var ar service.AdoptResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, err
	}
	return ar.Sessions, nil
}

// shardsUp counts live members.
func (ms *membership) shardsUp() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	n := 0
	for _, m := range ms.members {
		if m.state == memberUp {
			n++
		}
	}
	return n
}

// status snapshots the membership table for /metrics and /healthz.
func (ms *membership) status() map[string]ShardStatus {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make(map[string]ShardStatus, len(ms.members))
	for name, m := range ms.members {
		out[name] = ShardStatus{
			URL:         m.shard.URL,
			State:       m.state.String(),
			Adopter:     m.adopter,
			JournalDirs: append([]string(nil), m.dirs...),
		}
	}
	return out
}

// upShards snapshots the live members' shards (metrics aggregation).
func (ms *membership) upShards() []Shard {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Shard, 0, len(ms.order))
	for _, name := range ms.order {
		if m := ms.members[name]; m.state == memberUp {
			out = append(out, m.shard)
		}
	}
	return out
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
