package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard. 160 points per shard
// keeps the arc-length imbalance across 10k keys within ~±20% of the mean
// (pinned by TestRingBalance) while the whole ring for a 100-shard fleet is
// still only 16k points — one binary search over a flat array per route.
const DefaultVNodes = 160

// Ring consistent-hashes session IDs onto shard names. It is immutable
// after construction and therefore safe for concurrent use; membership
// changes (failover) are layered on top by the router, not by mutating the
// ring, so placement of surviving sessions never moves when a shard dies.
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// fnv1a is FNV-1a 64; session IDs are random hex, so the avalanche of FNV
// plus the splitmix finalizer spreads vnode points uniformly.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer, the same construction the chaos and
// experiment seed streams use: it decorrelates the sequential vnode indices
// so one shard's points do not clump.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRing builds a ring of vnodes points per shard (DefaultVNodes when
// vnodes <= 0). Shard names must be unique.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{
		points: make([]ringPoint, 0, len(shards)*vnodes),
		shards: append([]string(nil), shards...),
	}
	for i, name := range shards {
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard %q on ring", name)
		}
		seen[name] = true
		base := fnv1a(name)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  mix64(base ^ mix64(uint64(v))),
				shard: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on shard index so point order — and therefore ownership —
		// is independent of the shard list's order of insertion.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// Owner returns the shard that owns key: the first ring point clockwise from
// the key's hash.
func (r *Ring) Owner(key string) string {
	h := mix64(fnv1a(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}

// Shards returns the ring's shard names in construction order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Spread counts how many of n synthetic keys land on each shard — the
// balance diagnostic behind the ring tests and `wire-serve route` startup
// logging.
func (r *Ring) Spread(n int) map[string]int {
	out := make(map[string]int, len(r.shards))
	for _, s := range r.shards {
		out[s] = 0
	}
	for i := 0; i < n; i++ {
		out[r.Owner("spread-"+strconv.Itoa(i))]++
	}
	return out
}
