package monitor

import (
	"testing"

	"repro/internal/dag"
)

func sampleSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	b := dag.NewBuilder("m")
	s0 := b.AddStage("a")
	s1 := b.AddStage("b")
	r := b.AddTask(s0, "r", 10, 1, 5)
	b.AddTask(s1, "x", 10, 1, 5, r)
	b.AddTask(s1, "y", 10, 1, 5, r)
	b.AddTask(s1, "z", 10, 1, 5, r)
	wf := b.MustBuild()
	snap := &Snapshot{
		Now:      100,
		Interval: 10,
		Workflow: wf,
		Tasks: []TaskRecord{
			{ID: 0, Stage: 0, State: Completed, ExecTime: 9, TransferTime: 1},
			{ID: 1, Stage: 1, State: Running, Elapsed: 4},
			{ID: 2, Stage: 1, State: Ready},
			{ID: 3, Stage: 1, State: Blocked},
		},
		Instances: []InstanceRecord{
			{ID: 0, Slots: 2, Running: []dag.TaskID{1}},
			{ID: 1, Slots: 2, Draining: true},
		},
	}
	return snap
}

func TestTaskAccessors(t *testing.T) {
	snap := sampleSnapshot(t)
	if snap.Task(1).State != Running {
		t.Fatal("Task accessor wrong")
	}
	if got := snap.Task(0).Occupancy(); got != 10 {
		t.Fatalf("Occupancy = %v", got)
	}
}

func TestStageRecords(t *testing.T) {
	snap := sampleSnapshot(t)
	recs := snap.StageRecords(1)
	if len(recs) != 3 {
		t.Fatalf("stage records = %d", len(recs))
	}
	for _, r := range recs {
		if r.Stage != 1 {
			t.Fatalf("record %+v in wrong stage", r)
		}
	}
}

func TestCounts(t *testing.T) {
	snap := sampleSnapshot(t)
	counts := snap.CountByState()
	if counts[Completed] != 1 || counts[Running] != 1 || counts[Ready] != 1 || counts[Blocked] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if snap.RemainingTasks() != 3 {
		t.Fatalf("remaining = %d", snap.RemainingTasks())
	}
	if snap.ActiveLoad() != 2 {
		t.Fatalf("active load = %d", snap.ActiveLoad())
	}
	if snap.Done() {
		t.Fatal("snapshot wrongly done")
	}
	if snap.HeldInstances() != 2 {
		t.Fatalf("held = %d", snap.HeldInstances())
	}
}

func TestNonDrainingInstances(t *testing.T) {
	snap := sampleSnapshot(t)
	nd := snap.NonDrainingInstances()
	if len(nd) != 1 || nd[0].ID != 0 {
		t.Fatalf("non-draining = %+v", nd)
	}
}

func TestDone(t *testing.T) {
	snap := sampleSnapshot(t)
	for i := range snap.Tasks {
		snap.Tasks[i].State = Completed
	}
	if !snap.Done() {
		t.Fatal("all-completed snapshot not done")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[TaskState]string{
		Blocked: "blocked", Ready: "ready", Running: "running", Completed: "completed",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
	if TaskState(99).String() != "unknown" {
		t.Fatal("unknown state string")
	}
}
