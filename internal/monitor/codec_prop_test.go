package monitor_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/simtime"
)

// snapNoMethods strips Snapshot's hand-rolled codec so encoding/json
// provides the reference bytes and reference decode semantics.
type snapNoMethods monitor.Snapshot

func randPropFloat(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return float64(rng.Intn(10000))
	case 2:
		return rng.Float64() * 1e-7 // formats in exponent form
	case 3:
		return rng.Float64() * 1e22 // formats in exponent form
	case 4:
		return -rng.Float64() * 123.456
	default:
		return rng.NormFloat64() * 1e4
	}
}

func randPropString(rng *rand.Rand) string {
	pool := []string{
		"", "plain", "a<b>&c", `qu"ote\back`, "tab\tnl\nctl\x01",
		"unicode ☃ line sep ", "bad\xffutf8",
	}
	return pool[rng.Intn(len(pool))]
}

func randSnapshot(rng *rand.Rand) *monitor.Snapshot {
	s := &monitor.Snapshot{
		Now:              simtime.Time(randPropFloat(rng)),
		Interval:         simtime.Duration(randPropFloat(rng)),
		ChargingUnit:     simtime.Duration(randPropFloat(rng)),
		LagTime:          simtime.Duration(randPropFloat(rng)),
		SlotsPerInstance: rng.Intn(8),
		MaxInstances:     rng.Intn(3), // 0 exercises omitempty
	}
	switch rng.Intn(4) {
	case 0: // nil Tasks -> encodes as null
	case 1:
		s.Tasks = []monitor.TaskRecord{}
	default:
		for i := 0; i < rng.Intn(6)+1; i++ {
			s.Tasks = append(s.Tasks, monitor.TaskRecord{
				ID:               dag.TaskID(i),
				Stage:            dag.StageID(rng.Intn(4)),
				State:            monitor.TaskState(rng.Intn(5)),
				InputSize:        randPropFloat(rng),
				ReadyAt:          simtime.Time(randPropFloat(rng)),
				StartedAt:        simtime.Time(randPropFloat(rng)),
				Instance:         cloud.InstanceID(rng.Intn(3)),
				Slot:             rng.Intn(3),
				Elapsed:          simtime.Duration(randPropFloat(rng)),
				TransferObserved: rng.Intn(2) == 0,
				TransferTime:     simtime.Duration(randPropFloat(rng)),
				CompletedAt:      simtime.Time(randPropFloat(rng)),
				ExecTime:         simtime.Duration(randPropFloat(rng)),
			})
		}
	}
	if rng.Intn(3) > 0 {
		for i := 0; i < rng.Intn(4)+1; i++ {
			inst := monitor.InstanceRecord{
				ID:               cloud.InstanceID(i),
				State:            cloud.State(rng.Intn(3)),
				Slots:            rng.Intn(4),
				RequestedAt:      simtime.Time(randPropFloat(rng)),
				ActiveAt:         simtime.Time(randPropFloat(rng)),
				TimeToNextCharge: simtime.Duration(randPropFloat(rng)),
				Draining:         rng.Intn(2) == 0,
			}
			for j := 0; j < rng.Intn(3); j++ {
				inst.Running = append(inst.Running, dag.TaskID(j))
			}
			s.Instances = append(s.Instances, inst)
		}
	}
	for i := 0; i < rng.Intn(4); i++ {
		s.RecentTransfers = append(s.RecentTransfers, simtime.Duration(randPropFloat(rng)))
	}
	return s
}

// TestSnapshotCodecMatchesStock cross-checks the hand-rolled codec against
// encoding/json on randomized snapshots: the encoder must be byte-identical
// and the decoder must reconstruct the same value (including nil-vs-empty
// slice shapes) from the stock bytes.
func TestSnapshotCodecMatchesStock(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := randSnapshot(rng)

		got, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("seed %d: custom marshal: %v", seed, err)
		}
		want, err := json.Marshal((*snapNoMethods)(snap))
		if err != nil {
			t.Fatalf("seed %d: stock marshal: %v", seed, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: encoding mismatch\ncustom: %s\nstock:  %s", seed, got, want)
		}

		var viaCustom monitor.Snapshot
		if err := monitor.UnmarshalSnapshot(want, &viaCustom); err != nil {
			t.Fatalf("seed %d: custom decode: %v", seed, err)
		}
		var viaStock snapNoMethods
		if err := json.Unmarshal(want, &viaStock); err != nil {
			t.Fatalf("seed %d: stock decode: %v", seed, err)
		}
		if !reflect.DeepEqual(viaCustom, monitor.Snapshot(viaStock)) {
			t.Fatalf("seed %d: decode mismatch\ncustom: %#v\nstock:  %#v", seed, viaCustom, viaStock)
		}
	}
}

// TestSnapshotDecodeOddJSON feeds hand-written awkward JSON — whitespace,
// unknown fields, nulls, empty arrays, duplicate keys, escaped key names,
// legacy integer enums — through both decoders and requires identical
// results, including error agreement.
func TestSnapshotDecodeOddJSON(t *testing.T) {
	cases := []string{
		`{}`,
		` { "now_s" : 1.5 , "tasks" : null } `,
		`{"tasks":[],"instances":[],"recent_transfers_s":[]}`,
		`{"unknown":{"nested":[1,2,{"x":null}]},"interval_s":2}`,
		`{"now_s":1,"now_s":2}`,
		`{"tasks":[{"id":3,"stage":1,"state":"running"}]}`,
		`{"tasks":[{"id":1,"state":"4"},{"id":2,"state":"quarantined"}]}`,
		`{"instances":[{"id":7,"state":"active","slots":2,"running":[]},{"id":8,"state":"2","running":null}]}`,
		`{"now_s":1e3,"interval_s":1.5E+2,"lag_time_s":-0}`,
		`{"tasks":[{"id":1,"input_size_mb":0.25,"transfer_observed":true}],"max_instances":12}`,
		`{"tasks":[{"state":"bogus"}]}`,
		`{"now_s":"nan"}`,
		`{"tasks":[{"id":1}`,
		`{"now_s":1}trailing`,
	}
	for i, src := range cases {
		var viaCustom monitor.Snapshot
		errCustom := monitor.UnmarshalSnapshot([]byte(src), &viaCustom)
		var viaStock snapNoMethods
		errStock := json.Unmarshal([]byte(src), &viaStock)
		if (errCustom == nil) != (errStock == nil) {
			t.Fatalf("case %d %q: error mismatch: custom=%v stock=%v", i, src, errCustom, errStock)
		}
		if errCustom != nil {
			continue
		}
		if !reflect.DeepEqual(viaCustom, monitor.Snapshot(viaStock)) {
			t.Fatalf("case %d %q: decode mismatch\ncustom: %#v\nstock:  %#v", i, src, viaCustom, viaStock)
		}
	}
}

// TestSnapshotDecodeMerges pins encoding/json's merge semantics: decoding
// into a non-zero snapshot keeps fields the document doesn't mention, and
// reused slice capacity must not leak stale element fields.
func TestSnapshotDecodeMerges(t *testing.T) {
	base := func() monitor.Snapshot {
		return monitor.Snapshot{
			Now:              99,
			SlotsPerInstance: 4,
			Tasks: []monitor.TaskRecord{
				{ID: 1, State: monitor.Running, Elapsed: 7, Slot: 2},
				{ID: 2, State: monitor.Completed, ExecTime: 3},
			},
			RecentTransfers: []simtime.Duration{1, 2, 3},
		}
	}
	src := `{"interval_s":5,"tasks":[{"id":1,"state":"completed"}],"recent_transfers_s":[9]}`

	viaCustom := base()
	if err := monitor.UnmarshalSnapshot([]byte(src), &viaCustom); err != nil {
		t.Fatalf("custom decode: %v", err)
	}
	viaStock := snapNoMethods(base())
	if err := json.Unmarshal([]byte(src), &viaStock); err != nil {
		t.Fatalf("stock decode: %v", err)
	}
	if !reflect.DeepEqual(viaCustom, monitor.Snapshot(viaStock)) {
		t.Fatalf("merge mismatch\ncustom: %#v\nstock:  %#v", viaCustom, viaStock)
	}
}
