// Package monitor defines the monitoring snapshot a workflow framework
// exposes to the WIRE controller at the start of each MAPE iteration
// (§III-B1). It is the contract between the execution simulator (standing in
// for Pegasus/HTCondor kickstart records) and the Analyze/Plan phases.
//
// A Snapshot contains only information a real framework publishes: the
// static DAG structure, per-task lifecycle state and observed times, input
// data sizes, instance pool state, and billing parameters. Controllers must
// not read the ground-truth ExecTime/TransferTime fields of the embedded
// workflow's tasks — those model the physical world, and the whole point of
// WIRE is to predict them from observations. The predictor's tests enforce
// this by perturbing ground truth after the snapshot is taken.
package monitor

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/simtime"
)

// TaskState is the lifecycle state of a task as seen by the framework.
type TaskState int

// Task lifecycle states.
const (
	// Blocked: at least one predecessor has not completed.
	Blocked TaskState = iota
	// Ready: all predecessors completed; waiting for a slot.
	Ready
	// Running: occupying a slot.
	Running
	// Completed: finished; observed times are final.
	Completed
	// Quarantined: retired after exhausting its live-plane attempt budget
	// (poison task); never scheduled again. Terminal like Completed, but
	// its successors stay Blocked forever and the run finishes degraded.
	Quarantined
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Quarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the state by name so the snapshot wire format does not
// depend on the ordering of the lifecycle constants.
func (s TaskState) MarshalJSON() ([]byte, error) {
	switch s {
	case Blocked, Ready, Running, Completed, Quarantined:
		return []byte(`"` + s.String() + `"`), nil
	default:
		return nil, fmt.Errorf("monitor: cannot marshal unknown task state %d", int(s))
	}
}

// UnmarshalJSON decodes a state name (or a legacy integer).
func (s *TaskState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"blocked"`, "0":
		*s = Blocked
	case `"ready"`, "1":
		*s = Ready
	case `"running"`, "2":
		*s = Running
	case `"completed"`, "3":
		*s = Completed
	case `"quarantined"`, "4":
		*s = Quarantined
	default:
		return fmt.Errorf("monitor: unknown task state %s", b)
	}
	return nil
}

// TaskRecord is the monitoring view of one task. The json tags define the
// stable wire format served by wire-serve; zero-valued lifecycle fields are
// omitted (absent == zero, so the encoding round-trips losslessly).
type TaskRecord struct {
	ID    dag.TaskID  `json:"id"`
	Stage dag.StageID `json:"stage"`
	State TaskState   `json:"state"`

	// InputSize is recorded for every task (§II-C property 1) and feeds
	// Policies 4 and 5.
	InputSize float64 `json:"input_size_mb,omitempty"`

	// ReadyAt is when the task became ready (valid for Ready and later).
	ReadyAt simtime.Time `json:"ready_at_s,omitempty"`

	// StartedAt / Instance / Slot are valid while Running and after.
	StartedAt simtime.Time     `json:"started_at_s,omitempty"`
	Instance  cloud.InstanceID `json:"instance,omitempty"`
	Slot      int              `json:"slot,omitempty"`

	// Elapsed is the run time so far for Running tasks (slot occupancy
	// consumed — the restart/sunk cost of §III-B2).
	Elapsed simtime.Duration `json:"elapsed_s,omitempty"`

	// TransferObserved is true once the task's input transfer finished;
	// TransferTime then holds the observed transfer duration.
	TransferObserved bool             `json:"transfer_observed,omitempty"`
	TransferTime     simtime.Duration `json:"transfer_time_s,omitempty"`

	// CompletedAt / ExecTime are valid once Completed. ExecTime is the
	// observed execution portion (occupancy minus transfer).
	CompletedAt simtime.Time     `json:"completed_at_s,omitempty"`
	ExecTime    simtime.Duration `json:"exec_time_s,omitempty"`
}

// Occupancy returns the observed total slot occupancy of a completed task.
func (r *TaskRecord) Occupancy() simtime.Duration { return r.ExecTime + r.TransferTime }

// InstanceRecord is the monitoring view of one held worker instance.
type InstanceRecord struct {
	ID          cloud.InstanceID `json:"id"`
	State       cloud.State      `json:"state"`
	Slots       int              `json:"slots"`
	RequestedAt simtime.Time     `json:"requested_at_s,omitempty"`
	ActiveAt    simtime.Time     `json:"active_at_s,omitempty"`

	// TimeToNextCharge is r_j, measured from Snapshot.Now (§III-D).
	TimeToNextCharge simtime.Duration `json:"time_to_next_charge_s,omitempty"`

	// Running lists the tasks currently occupying slots.
	Running []dag.TaskID `json:"running,omitempty"`

	// Draining marks instances already ordered released; the scheduler
	// stops assigning work to them and the controller must not count
	// them toward future capacity.
	Draining bool `json:"draining,omitempty"`
}

// Snapshot is everything the controller sees at one MAPE iteration. It is
// also the request body of wire-serve's plan endpoint; clients of a session
// may omit Workflow (the service injects the session's DAG).
type Snapshot struct {
	// Now is the iteration start time; Interval is the MAPE period
	// (equal to the cloud lag time, §III-A).
	Now      simtime.Time     `json:"now_s"`
	Interval simtime.Duration `json:"interval_s"`

	// Billing and site parameters the steering policy needs.
	ChargingUnit     simtime.Duration `json:"charging_unit_s"`
	LagTime          simtime.Duration `json:"lag_time_s"`
	SlotsPerInstance int              `json:"slots_per_instance"`
	MaxInstances     int              `json:"max_instances,omitempty"`

	// Workflow is the static DAG (structure, stages, input sizes). See
	// the package comment for what controllers may read from it.
	Workflow *dag.Workflow `json:"workflow,omitempty"`

	// Tasks is indexed by dag.TaskID.
	Tasks []TaskRecord `json:"tasks"`

	// Instances lists held (pending or active) instances.
	Instances []InstanceRecord `json:"instances,omitempty"`

	// RecentTransfers are the data-transfer durations observed since the
	// previous snapshot — the basis for the memoryless transfer estimate
	// (§III-B1).
	RecentTransfers []float64 `json:"recent_transfers_s,omitempty"`
}

// Task returns the record for the given task.
func (s *Snapshot) Task(id dag.TaskID) *TaskRecord { return &s.Tasks[id] }

// StageRecords returns the records of all tasks in a stage, in stage task
// order.
func (s *Snapshot) StageRecords(stage dag.StageID) []*TaskRecord {
	st := s.Workflow.Stage(stage)
	out := make([]*TaskRecord, 0, len(st.Tasks))
	for _, tid := range st.Tasks {
		out = append(out, &s.Tasks[tid])
	}
	return out
}

// CountByState returns how many tasks are in each lifecycle state.
func (s *Snapshot) CountByState() map[TaskState]int {
	m := make(map[TaskState]int, 4)
	for i := range s.Tasks {
		m[s.Tasks[i].State]++
	}
	return m
}

// RemainingTasks returns the number of tasks not yet completed.
func (s *Snapshot) RemainingTasks() int {
	n := 0
	for i := range s.Tasks {
		if s.Tasks[i].State != Completed {
			n++
		}
	}
	return n
}

// ActiveLoad returns the number of ready plus running tasks — the signal the
// reactive baselines scale on (§IV-C3).
func (s *Snapshot) ActiveLoad() int {
	n := 0
	for i := range s.Tasks {
		if st := s.Tasks[i].State; st == Ready || st == Running {
			n++
		}
	}
	return n
}

// HeldInstances returns the count of pending+active instances (pool size m).
func (s *Snapshot) HeldInstances() int { return len(s.Instances) }

// NonDrainingInstances returns held instances not already ordered released.
func (s *Snapshot) NonDrainingInstances() []InstanceRecord {
	var out []InstanceRecord
	for _, in := range s.Instances {
		if !in.Draining {
			out = append(out, in)
		}
	}
	return out
}

// Done reports whether every task has completed.
func (s *Snapshot) Done() bool { return s.RemainingTasks() == 0 }
