// Package monitor defines the monitoring snapshot a workflow framework
// exposes to the WIRE controller at the start of each MAPE iteration
// (§III-B1). It is the contract between the execution simulator (standing in
// for Pegasus/HTCondor kickstart records) and the Analyze/Plan phases.
//
// A Snapshot contains only information a real framework publishes: the
// static DAG structure, per-task lifecycle state and observed times, input
// data sizes, instance pool state, and billing parameters. Controllers must
// not read the ground-truth ExecTime/TransferTime fields of the embedded
// workflow's tasks — those model the physical world, and the whole point of
// WIRE is to predict them from observations. The predictor's tests enforce
// this by perturbing ground truth after the snapshot is taken.
package monitor

import (
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/simtime"
)

// TaskState is the lifecycle state of a task as seen by the framework.
type TaskState int

// Task lifecycle states.
const (
	// Blocked: at least one predecessor has not completed.
	Blocked TaskState = iota
	// Ready: all predecessors completed; waiting for a slot.
	Ready
	// Running: occupying a slot.
	Running
	// Completed: finished; observed times are final.
	Completed
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Completed:
		return "completed"
	default:
		return "unknown"
	}
}

// TaskRecord is the monitoring view of one task.
type TaskRecord struct {
	ID    dag.TaskID
	Stage dag.StageID
	State TaskState

	// InputSize is recorded for every task (§II-C property 1) and feeds
	// Policies 4 and 5.
	InputSize float64

	// ReadyAt is when the task became ready (valid for Ready and later).
	ReadyAt simtime.Time

	// StartedAt / Instance / Slot are valid while Running and after.
	StartedAt simtime.Time
	Instance  cloud.InstanceID
	Slot      int

	// Elapsed is the run time so far for Running tasks (slot occupancy
	// consumed — the restart/sunk cost of §III-B2).
	Elapsed simtime.Duration

	// TransferObserved is true once the task's input transfer finished;
	// TransferTime then holds the observed transfer duration.
	TransferObserved bool
	TransferTime     simtime.Duration

	// CompletedAt / ExecTime are valid once Completed. ExecTime is the
	// observed execution portion (occupancy minus transfer).
	CompletedAt simtime.Time
	ExecTime    simtime.Duration
}

// Occupancy returns the observed total slot occupancy of a completed task.
func (r *TaskRecord) Occupancy() simtime.Duration { return r.ExecTime + r.TransferTime }

// InstanceRecord is the monitoring view of one held worker instance.
type InstanceRecord struct {
	ID          cloud.InstanceID
	State       cloud.State
	Slots       int
	RequestedAt simtime.Time
	ActiveAt    simtime.Time

	// TimeToNextCharge is r_j, measured from Snapshot.Now (§III-D).
	TimeToNextCharge simtime.Duration

	// Running lists the tasks currently occupying slots.
	Running []dag.TaskID

	// Draining marks instances already ordered released; the scheduler
	// stops assigning work to them and the controller must not count
	// them toward future capacity.
	Draining bool
}

// Snapshot is everything the controller sees at one MAPE iteration.
type Snapshot struct {
	// Now is the iteration start time; Interval is the MAPE period
	// (equal to the cloud lag time, §III-A).
	Now      simtime.Time
	Interval simtime.Duration

	// Billing and site parameters the steering policy needs.
	ChargingUnit     simtime.Duration
	LagTime          simtime.Duration
	SlotsPerInstance int
	MaxInstances     int

	// Workflow is the static DAG (structure, stages, input sizes). See
	// the package comment for what controllers may read from it.
	Workflow *dag.Workflow

	// Tasks is indexed by dag.TaskID.
	Tasks []TaskRecord

	// Instances lists held (pending or active) instances.
	Instances []InstanceRecord

	// RecentTransfers are the data-transfer durations observed since the
	// previous snapshot — the basis for the memoryless transfer estimate
	// (§III-B1).
	RecentTransfers []float64
}

// Task returns the record for the given task.
func (s *Snapshot) Task(id dag.TaskID) *TaskRecord { return &s.Tasks[id] }

// StageRecords returns the records of all tasks in a stage, in stage task
// order.
func (s *Snapshot) StageRecords(stage dag.StageID) []*TaskRecord {
	st := s.Workflow.Stage(stage)
	out := make([]*TaskRecord, 0, len(st.Tasks))
	for _, tid := range st.Tasks {
		out = append(out, &s.Tasks[tid])
	}
	return out
}

// CountByState returns how many tasks are in each lifecycle state.
func (s *Snapshot) CountByState() map[TaskState]int {
	m := make(map[TaskState]int, 4)
	for i := range s.Tasks {
		m[s.Tasks[i].State]++
	}
	return m
}

// RemainingTasks returns the number of tasks not yet completed.
func (s *Snapshot) RemainingTasks() int {
	n := 0
	for i := range s.Tasks {
		if s.Tasks[i].State != Completed {
			n++
		}
	}
	return n
}

// ActiveLoad returns the number of ready plus running tasks — the signal the
// reactive baselines scale on (§IV-C3).
func (s *Snapshot) ActiveLoad() int {
	n := 0
	for i := range s.Tasks {
		if st := s.Tasks[i].State; st == Ready || st == Running {
			n++
		}
	}
	return n
}

// HeldInstances returns the count of pending+active instances (pool size m).
func (s *Snapshot) HeldInstances() int { return len(s.Instances) }

// NonDrainingInstances returns held instances not already ordered released.
func (s *Snapshot) NonDrainingInstances() []InstanceRecord {
	var out []InstanceRecord
	for _, in := range s.Instances {
		if !in.Draining {
			out = append(out, in)
		}
	}
	return out
}

// Done reports whether every task has completed.
func (s *Snapshot) Done() bool { return s.RemainingTasks() == 0 }
