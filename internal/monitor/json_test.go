package monitor_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// capture records every snapshot a controller receives, so the round-trip
// test exercises the exact structures the simulator publishes.
type capture struct {
	inner sim.Controller
	snaps []*monitor.Snapshot
}

func (c *capture) Name() string { return c.inner.Name() }

func (c *capture) Plan(s *monitor.Snapshot) sim.Decision {
	c.snaps = append(c.snaps, s)
	return c.inner.Plan(s)
}

func testWorkflow(t *testing.T) *dag.Workflow {
	t.Helper()
	b := dag.NewBuilder("json-roundtrip")
	b.AddStage("prep")
	b.AddStage("fan")
	b.AddStage("merge")
	root := b.AddTask(0, "prep0", 30, 5, 12)
	var fan []dag.TaskID
	for i := 0; i < 8; i++ {
		fan = append(fan, b.AddTask(1, "", 120, 10, 64, root))
	}
	sink := b.AddTask(2, "merge0", 60, 8, 128, fan...)
	b.SetOutputSize(sink, 256)
	wf, err := b.Build()
	if err != nil {
		t.Fatalf("build workflow: %v", err)
	}
	return wf
}

// TestSnapshotJSONRoundTrip marshals every snapshot of a real run and
// requires the decoded structure to be deep-equal: the snapshot is the
// public wire format of wire-serve's plan endpoint, so no field may drop or
// mangle data over JSON.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	wf := testWorkflow(t)
	cap := &capture{inner: core.New(core.Config{})}
	_, err := sim.Run(wf, cap, sim.Config{
		Cloud: cloud.Config{
			SlotsPerInstance: 2,
			LagTime:          60,
			ChargingUnit:     300,
			MaxInstances:     6,
		},
		Seed:         7,
		Interference: dist.NewLognormalFromMean(1, 0.1),
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if len(cap.snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	for i, snap := range cap.snaps {
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("snapshot %d: marshal: %v", i, err)
		}
		var got monitor.Snapshot
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("snapshot %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(&got, snap) {
			t.Fatalf("snapshot %d: round trip mismatch:\n got %+v\nwant %+v", i, &got, snap)
		}
	}
}

// TestSnapshotJSONRoundTripAllFields covers fields a short run may leave at
// their zero value (Slot, Draining, pending instances, recent transfers).
func TestSnapshotJSONRoundTripAllFields(t *testing.T) {
	wf := testWorkflow(t)
	snap := &monitor.Snapshot{
		Now:              420,
		Interval:         60,
		ChargingUnit:     300,
		LagTime:          60,
		SlotsPerInstance: 2,
		MaxInstances:     6,
		Workflow:         wf,
		Tasks: []monitor.TaskRecord{
			{ID: 0, Stage: 0, State: monitor.Completed, InputSize: 12, ReadyAt: 0,
				StartedAt: 60, Instance: 0, Slot: 1, TransferObserved: true,
				TransferTime: 5.25, CompletedAt: 95.5, ExecTime: 30.25},
			{ID: 1, Stage: 1, State: monitor.Running, InputSize: 64, ReadyAt: 95.5,
				StartedAt: 100, Instance: 2, Elapsed: 320, TransferObserved: true,
				TransferTime: 10},
			{ID: 2, Stage: 1, State: monitor.Ready, InputSize: 64, ReadyAt: 95.5},
			{ID: 3, Stage: 2, State: monitor.Blocked, InputSize: 128},
		},
		Instances: []monitor.InstanceRecord{
			{ID: 0, State: cloud.Active, Slots: 2, RequestedAt: 0, ActiveAt: 60,
				TimeToNextCharge: 240, Running: []dag.TaskID{1}, Draining: false},
			{ID: 2, State: cloud.Pending, Slots: 2, RequestedAt: 400, ActiveAt: 460},
			{ID: 1, State: cloud.Active, Slots: 2, RequestedAt: 0, ActiveAt: 60,
				TimeToNextCharge: 240, Draining: true},
		},
		RecentTransfers: []float64{5.25, 10},
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got monitor.Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(&got, snap) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", &got, snap)
	}
}

// TestTaskStateJSONNames pins the on-wire state names and accepts legacy
// integer encodings.
func TestTaskStateJSONNames(t *testing.T) {
	for state, name := range map[monitor.TaskState]string{
		monitor.Blocked:   `"blocked"`,
		monitor.Ready:     `"ready"`,
		monitor.Running:   `"running"`,
		monitor.Completed: `"completed"`,
	} {
		b, err := json.Marshal(state)
		if err != nil {
			t.Fatalf("marshal %v: %v", state, err)
		}
		if string(b) != name {
			t.Errorf("marshal %v = %s, want %s", state, b, name)
		}
		var fromName, fromInt monitor.TaskState
		if err := json.Unmarshal(b, &fromName); err != nil || fromName != state {
			t.Errorf("unmarshal %s = %v, %v; want %v", b, fromName, err, state)
		}
		legacy, _ := json.Marshal(int(state))
		if err := json.Unmarshal(legacy, &fromInt); err != nil || fromInt != state {
			t.Errorf("unmarshal legacy %s = %v, %v; want %v", legacy, fromInt, err, state)
		}
	}
	var s monitor.TaskState
	if err := json.Unmarshal([]byte(`"exploded"`), &s); err == nil {
		t.Error("unknown state name should fail to unmarshal")
	}
}
