package monitor

import (
	"encoding/json"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/jsonlite"
	"repro/internal/simtime"
)

// This file is the hand-rolled JSON codec for Snapshot, the plan endpoint's
// request body. A snapshot is posted and decoded once per MAPE interval and
// carries one record per task, so on big workflows the reflect-driven
// encoding/json round trip dominates the whole service path (profiled at
// ~3/4 of loadgen CPU). Without its Workflow a snapshot is numbers, enum
// names, and booleans only, which the jsonlite codec handles several times
// faster.
//
// The encoder is byte-identical to encoding/json (same field order,
// omitempty behavior, float formatting, and enum names), so journals,
// decision-stream pins, and golden files cannot tell the difference. The
// decoder implements the same semantics as encoding/json for this shape
// (merge into existing fields, last duplicate key wins, slice capacity
// reuse); the embedded Workflow and any escaped object key are delegated to
// encoding/json rather than re-implemented.

// snapshotNoMethods strips Snapshot's Marshal/UnmarshalJSON so the fallback
// paths can reuse the stock reflect codec without recursing.
type snapshotNoMethods Snapshot

// MarshalJSON implements json.Marshaler, byte-identical to the stock
// encoding of the same struct.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	if s.Workflow != nil {
		// Workflows carry task names (escaped strings); rare on the wire
		// — sessions strip them — so not worth hand-encoding.
		return json.Marshal((*snapshotNoMethods)(s))
	}
	return AppendSnapshotJSON(make([]byte, 0, s.encodedSizeHint()), s)
}

func (s *Snapshot) encodedSizeHint() int {
	return 128 + len(s.Tasks)*112 + len(s.Instances)*144 + len(s.RecentTransfers)*20
}

// AppendSnapshotJSON appends s encoded as JSON to dst and returns the
// extended buffer, allowing callers with a reusable buffer (the service
// client, the plan journal) to encode with zero garbage.
func AppendSnapshotJSON(dst []byte, s *Snapshot) ([]byte, error) {
	if s.Workflow != nil {
		b, err := json.Marshal((*snapshotNoMethods)(s))
		return append(dst, b...), err
	}
	var err error
	dst = append(dst, `{"now_s":`...)
	dst, err = appendFloat(dst, float64(s.Now), err)
	dst = append(dst, `,"interval_s":`...)
	dst, err = appendFloat(dst, float64(s.Interval), err)
	dst = append(dst, `,"charging_unit_s":`...)
	dst, err = appendFloat(dst, float64(s.ChargingUnit), err)
	dst = append(dst, `,"lag_time_s":`...)
	dst, err = appendFloat(dst, float64(s.LagTime), err)
	dst = append(dst, `,"slots_per_instance":`...)
	dst = appendInt(dst, int64(s.SlotsPerInstance))
	if s.MaxInstances != 0 {
		dst = append(dst, `,"max_instances":`...)
		dst = appendInt(dst, int64(s.MaxInstances))
	}
	dst = append(dst, `,"tasks":`...)
	if s.Tasks == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range s.Tasks {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst, err = appendTaskRecord(dst, &s.Tasks[i], err)
		}
		dst = append(dst, ']')
	}
	if len(s.Instances) > 0 {
		dst = append(dst, `,"instances":[`...)
		for i := range s.Instances {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst, err = appendInstanceRecord(dst, &s.Instances[i], err)
		}
		dst = append(dst, ']')
	}
	if len(s.RecentTransfers) > 0 {
		dst = append(dst, `,"recent_transfers_s":[`...)
		for i, v := range s.RecentTransfers {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst, err = appendFloat(dst, v, err)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}')
	return dst, err
}

// appendFloat threads the first error through the append chain.
func appendFloat(dst []byte, f float64, err error) ([]byte, error) {
	dst, ferr := jsonlite.AppendFloat(dst, f)
	if err == nil {
		err = ferr
	}
	return dst, err
}

func appendInt(dst []byte, n int64) []byte {
	return jsonlite.AppendInt(dst, n)
}

func appendTaskRecord(dst []byte, r *TaskRecord, err error) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = appendInt(dst, int64(r.ID))
	dst = append(dst, `,"stage":`...)
	dst = appendInt(dst, int64(r.Stage))
	dst = append(dst, `,"state":`...)
	switch r.State {
	case Blocked:
		dst = append(dst, `"blocked"`...)
	case Ready:
		dst = append(dst, `"ready"`...)
	case Running:
		dst = append(dst, `"running"`...)
	case Completed:
		dst = append(dst, `"completed"`...)
	case Quarantined:
		dst = append(dst, `"quarantined"`...)
	default:
		if err == nil {
			_, err = r.State.MarshalJSON()
		}
		dst = append(dst, '0')
	}
	if r.InputSize != 0 {
		dst = append(dst, `,"input_size_mb":`...)
		dst, err = appendFloat(dst, r.InputSize, err)
	}
	if r.ReadyAt != 0 {
		dst = append(dst, `,"ready_at_s":`...)
		dst, err = appendFloat(dst, float64(r.ReadyAt), err)
	}
	if r.StartedAt != 0 {
		dst = append(dst, `,"started_at_s":`...)
		dst, err = appendFloat(dst, float64(r.StartedAt), err)
	}
	if r.Instance != 0 {
		dst = append(dst, `,"instance":`...)
		dst = appendInt(dst, int64(r.Instance))
	}
	if r.Slot != 0 {
		dst = append(dst, `,"slot":`...)
		dst = appendInt(dst, int64(r.Slot))
	}
	if r.Elapsed != 0 {
		dst = append(dst, `,"elapsed_s":`...)
		dst, err = appendFloat(dst, float64(r.Elapsed), err)
	}
	if r.TransferObserved {
		dst = append(dst, `,"transfer_observed":true`...)
	}
	if r.TransferTime != 0 {
		dst = append(dst, `,"transfer_time_s":`...)
		dst, err = appendFloat(dst, float64(r.TransferTime), err)
	}
	if r.CompletedAt != 0 {
		dst = append(dst, `,"completed_at_s":`...)
		dst, err = appendFloat(dst, float64(r.CompletedAt), err)
	}
	if r.ExecTime != 0 {
		dst = append(dst, `,"exec_time_s":`...)
		dst, err = appendFloat(dst, float64(r.ExecTime), err)
	}
	return append(dst, '}'), err
}

func appendInstanceRecord(dst []byte, r *InstanceRecord, err error) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = appendInt(dst, int64(r.ID))
	dst = append(dst, `,"state":`...)
	switch r.State {
	case cloud.Pending:
		dst = append(dst, `"pending"`...)
	case cloud.Active:
		dst = append(dst, `"active"`...)
	case cloud.Terminated:
		dst = append(dst, `"terminated"`...)
	default:
		if err == nil {
			_, err = r.State.MarshalJSON()
		}
		dst = append(dst, '0')
	}
	dst = append(dst, `,"slots":`...)
	dst = appendInt(dst, int64(r.Slots))
	if r.RequestedAt != 0 {
		dst = append(dst, `,"requested_at_s":`...)
		dst, err = appendFloat(dst, float64(r.RequestedAt), err)
	}
	if r.ActiveAt != 0 {
		dst = append(dst, `,"active_at_s":`...)
		dst, err = appendFloat(dst, float64(r.ActiveAt), err)
	}
	if r.TimeToNextCharge != 0 {
		dst = append(dst, `,"time_to_next_charge_s":`...)
		dst, err = appendFloat(dst, float64(r.TimeToNextCharge), err)
	}
	if len(r.Running) > 0 {
		dst = append(dst, `,"running":[`...)
		for i, id := range r.Running {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendInt(dst, int64(id))
		}
		dst = append(dst, ']')
	}
	if r.Draining {
		dst = append(dst, `,"draining":true`...)
	}
	return append(dst, '}'), err
}

// UnmarshalJSON implements json.Unmarshaler with the hand-rolled parser.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	return UnmarshalSnapshot(data, s)
}

// UnmarshalSnapshot decodes one JSON value into s with the same semantics as
// encoding/json: present fields are set, absent fields keep their current
// values, slice backing arrays are reused. Callers with a scratch snapshot
// must zero it first (fields the new body omits are otherwise stale).
//
// Calling it directly — instead of routing through json.Unmarshal — also
// skips the stock machinery's separate whole-input validation pass.
func UnmarshalSnapshot(data []byte, s *Snapshot) error {
	p := jsonlite.Parser{Data: data}
	if err := parseSnapshot(&p, s); err != nil {
		return err
	}
	if !p.AtEnd() {
		return p.Errorf("unexpected data after top-level value")
	}
	return nil
}

func parseSnapshot(p *jsonlite.Parser, s *Snapshot) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "now_s":
			var f float64
			f, err = p.Float()
			s.Now = simtime.Time(f)
		case "interval_s":
			var f float64
			f, err = p.Float()
			s.Interval = simtime.Duration(f)
		case "charging_unit_s":
			var f float64
			f, err = p.Float()
			s.ChargingUnit = simtime.Duration(f)
		case "lag_time_s":
			var f float64
			f, err = p.Float()
			s.LagTime = simtime.Duration(f)
		case "slots_per_instance":
			var n int64
			n, err = p.Int()
			s.SlotsPerInstance = int(n)
		case "max_instances":
			var n int64
			n, err = p.Int()
			s.MaxInstances = int(n)
		case "workflow":
			// Workflow documents carry names and nested structure; use the
			// stock codec on just this subtree.
			var span []byte
			if span, err = p.SkipValue(); err == nil {
				err = json.Unmarshal(span, &s.Workflow)
			}
		case "tasks":
			s.Tasks, err = parseTaskRecords(p, s.Tasks)
		case "instances":
			s.Instances, err = parseInstanceRecords(p, s.Instances)
		case "recent_transfers_s":
			s.RecentTransfers, err = parseFloats(p, s.RecentTransfers)
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}

// growRecord extends s by one element, reusing backing capacity. The reused
// element is NOT zeroed, matching encoding/json's slice-element merge.
func growRecord[T any](s []T) []T {
	if len(s) < cap(s) {
		return s[:len(s)+1]
	}
	var zero T
	return append(s, zero)
}

func parseTaskRecords(p *jsonlite.Parser, dst []TaskRecord) ([]TaskRecord, error) {
	out := dst[:0]
	isArray, err := p.Array(func() error {
		out = growRecord(out)
		return parseTaskRecord(p, &out[len(out)-1])
	})
	if !isArray && err == nil {
		return nil, nil
	}
	if out == nil && isArray {
		out = []TaskRecord{}
	}
	return out, err
}

func parseTaskRecord(p *jsonlite.Parser, r *TaskRecord) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			var n int64
			n, err = p.Int()
			r.ID = dag.TaskID(n)
		case "stage":
			var n int64
			n, err = p.Int()
			r.Stage = dag.StageID(n)
		case "state":
			// TaskState decodes itself (a name, or a legacy integer);
			// hand it the raw value token.
			var span []byte
			if span, err = p.SkipValue(); err == nil {
				err = r.State.UnmarshalJSON(span)
			}
		case "input_size_mb":
			r.InputSize, err = p.Float()
		case "ready_at_s":
			var f float64
			f, err = p.Float()
			r.ReadyAt = simtime.Time(f)
		case "started_at_s":
			var f float64
			f, err = p.Float()
			r.StartedAt = simtime.Time(f)
		case "instance":
			var n int64
			n, err = p.Int()
			r.Instance = cloud.InstanceID(n)
		case "slot":
			var n int64
			n, err = p.Int()
			r.Slot = int(n)
		case "elapsed_s":
			var f float64
			f, err = p.Float()
			r.Elapsed = simtime.Duration(f)
		case "transfer_observed":
			r.TransferObserved, err = p.Bool()
		case "transfer_time_s":
			var f float64
			f, err = p.Float()
			r.TransferTime = simtime.Duration(f)
		case "completed_at_s":
			var f float64
			f, err = p.Float()
			r.CompletedAt = simtime.Time(f)
		case "exec_time_s":
			var f float64
			f, err = p.Float()
			r.ExecTime = simtime.Duration(f)
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}

func parseInstanceRecords(p *jsonlite.Parser, dst []InstanceRecord) ([]InstanceRecord, error) {
	out := dst[:0]
	isArray, err := p.Array(func() error {
		out = growRecord(out)
		return parseInstanceRecord(p, &out[len(out)-1])
	})
	if !isArray && err == nil {
		return nil, nil
	}
	if out == nil && isArray {
		out = []InstanceRecord{}
	}
	return out, err
}

func parseInstanceRecord(p *jsonlite.Parser, r *InstanceRecord) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			var n int64
			n, err = p.Int()
			r.ID = cloud.InstanceID(n)
		case "state":
			var span []byte
			if span, err = p.SkipValue(); err == nil {
				err = r.State.UnmarshalJSON(span)
			}
		case "slots":
			var n int64
			n, err = p.Int()
			r.Slots = int(n)
		case "requested_at_s":
			var f float64
			f, err = p.Float()
			r.RequestedAt = simtime.Time(f)
		case "active_at_s":
			var f float64
			f, err = p.Float()
			r.ActiveAt = simtime.Time(f)
		case "time_to_next_charge_s":
			var f float64
			f, err = p.Float()
			r.TimeToNextCharge = simtime.Duration(f)
		case "running":
			var ids []dag.TaskID
			isArray := false
			isArray, err = p.Array(func() error {
				n, err := p.Int()
				ids = append(ids, dag.TaskID(n))
				return err
			})
			if isArray && ids == nil {
				ids = []dag.TaskID{}
			}
			r.Running = ids
		case "draining":
			r.Draining, err = p.Bool()
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}

func parseFloats(p *jsonlite.Parser, dst []float64) ([]float64, error) {
	out := dst[:0]
	isArray, err := p.Array(func() error {
		f, err := p.Float()
		out = append(out, f)
		return err
	})
	if !isArray && err == nil {
		return nil, nil
	}
	if out == nil && isArray {
		out = []float64{}
	}
	return out, err
}
