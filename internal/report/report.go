// Package report renders experiment output as aligned text tables, CSV, and
// small ASCII CDF sketches — the textual equivalents of the paper's tables
// and figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells are converted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (headers first; the title is omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with the given precision, trimming trailing zeros.
func F(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// MeanStd formats "mean ± std".
func MeanStd(mean, std float64, prec int) string {
	return F(mean, prec) + " ± " + F(std, prec)
}

// Ratio formats a multiplier like "1.25x".
func Ratio(v float64) string { return F(v, 2) + "x" }

// CDFSketch renders an empirical CDF as a fixed-width ASCII strip: one
// character per quantile band, showing where the distribution mass sits
// inside [lo, hi]. Used to eyeball the Figure 4 CDFs in terminal output.
func CDFSketch(c *stats.CDF, lo, hi float64, width int) string {
	if width <= 0 || c == nil || c.Len() == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		x := lo + (hi-lo)*float64(i+1)/float64(width)
		p := c.P(x)
		b.WriteByte(" .:-=+*#%@"[int(p*9.999)])
	}
	return b.String()
}
