package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "Demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", 1)
	tab.AddRow("b", 22.5)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "name", "alpha", "22.5", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: every data line's second column starts at the same
	// offset.
	idx := strings.Index(lines[1], "value")
	if strings.Index(lines[3], "1") < idx {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("x,y", 2) // comma must be quoted
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") || !strings.Contains(out, `"x,y",2`) {
		t.Fatalf("csv = %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.500, 2) != "1.5" {
		t.Fatalf("F = %q", F(1.500, 2))
	}
	if F(2.0, 2) != "2" {
		t.Fatalf("F = %q", F(2.0, 2))
	}
	if F(3, 0) != "3" {
		t.Fatalf("F = %q", F(3, 0))
	}
	if MeanStd(1.25, 0.5, 2) != "1.25 ± 0.5" {
		t.Fatalf("MeanStd = %q", MeanStd(1.25, 0.5, 2))
	}
	if Ratio(1.5) != "1.5x" {
		t.Fatalf("Ratio = %q", Ratio(1.5))
	}
}

func TestCDFSketch(t *testing.T) {
	c := stats.NewCDF([]float64{0, 0, 0, 10, 10, 10})
	s := CDFSketch(c, -1, 11, 12)
	if len(s) != 12 {
		t.Fatalf("sketch len = %d", len(s))
	}
	// Mass accumulates: last char must be the densest glyph.
	if s[len(s)-1] != '@' {
		t.Fatalf("sketch = %q", s)
	}
	if CDFSketch(nil, 0, 1, 10) != "" || CDFSketch(c, 0, 1, 0) != "" {
		t.Fatal("degenerate sketches should be empty")
	}
}
