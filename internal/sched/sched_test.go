package sched

import (
	"testing"

	"repro/internal/dag"
)

func TestFIFOOrder(t *testing.T) {
	q := NewQueue(WithBoost(0))
	q.Push(2, 0, 10)
	q.Push(1, 0, 5)
	q.Push(3, 0, 20)
	var got []dag.TaskID
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, it.Task)
	}
	want := []dag.TaskID{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFirstFiveBoost(t *testing.T) {
	q := NewQueue()
	// Stage 0: 7 tasks ready at t=0; stage 1: 2 tasks ready earlier.
	for i := 0; i < 7; i++ {
		q.Push(dag.TaskID(i), 0, 0)
	}
	q.Push(100, 1, -5)
	q.Push(101, 1, -5)
	var boosted, rest []dag.TaskID
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		if it.Priority {
			boosted = append(boosted, it.Task)
		} else {
			rest = append(rest, it.Task)
		}
	}
	// First five of stage 0 plus both (first-five) of stage 1 are boosted.
	if len(boosted) != 7 {
		t.Fatalf("boosted = %v", boosted)
	}
	if len(rest) != 2 || rest[0] != 5 || rest[1] != 6 {
		t.Fatalf("rest = %v", rest)
	}
	// All boosted tasks came out before all non-boosted ones: verified by
	// construction of the two slices (Pop order).
}

func TestBoostCountsPerStage(t *testing.T) {
	q := NewQueue(WithBoost(2))
	for i := 0; i < 4; i++ {
		q.Push(dag.TaskID(i), 0, 0)
	}
	nBoost := 0
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		if it.Priority {
			nBoost++
		}
	}
	if nBoost != 2 {
		t.Fatalf("boosted %d tasks, want 2", nBoost)
	}
}

func TestWithOrderPermutation(t *testing.T) {
	// Reverse submission order: higher task ID dequeues first.
	rank := map[dag.TaskID]int{0: 3, 1: 2, 2: 1, 3: 0}
	q := NewQueue(WithBoost(0), WithOrder(func(t dag.TaskID) int { return rank[t] }))
	for i := 0; i < 4; i++ {
		q.Push(dag.TaskID(i), 0, 0)
	}
	want := []dag.TaskID{3, 2, 1, 0}
	for _, w := range want {
		it, ok := q.Pop()
		if !ok || it.Task != w {
			t.Fatalf("got %v, want %v", it.Task, w)
		}
	}
}

func TestRequeueKeepsPriority(t *testing.T) {
	q := NewQueue(WithBoost(1))
	q.Push(0, 0, 0) // boosted
	q.Push(1, 0, 0) // not boosted
	it, _ := q.Pop()
	if it.Task != 0 || !it.Priority {
		t.Fatalf("unexpected first pop %+v", it)
	}
	// Task 0 gets killed and requeued later; it must still jump ahead.
	q.Requeue(0, 0, 50, true)
	it, _ = q.Pop()
	if it.Task != 0 || !it.Priority {
		t.Fatalf("requeued task lost priority: %+v", it)
	}
	// And requeue must not consume the stage's boost budget.
	q.Push(2, 0, 60)
	it, _ = q.Pop()
	if it.Task != 1 {
		t.Fatalf("expected task 1 next, got %v", it.Task)
	}
}

func TestPeekAndLen(t *testing.T) {
	q := NewQueue()
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue")
	}
	q.Push(5, 0, 1)
	if it, ok := q.Peek(); !ok || it.Task != 5 {
		t.Fatalf("peek = %+v", it)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestSnapshotNonDestructive(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 8; i++ {
		q.Push(dag.TaskID(i), 0, float64(i))
	}
	snap := q.Snapshot()
	if len(snap) != 8 || q.Len() != 8 {
		t.Fatalf("snapshot disturbed queue: %d/%d", len(snap), q.Len())
	}
	// Snapshot order must equal actual pop order.
	for _, s := range snap {
		it, ok := q.Pop()
		if !ok || it.Task != s.Task {
			t.Fatalf("snapshot order %v != pop order %v", s.Task, it.Task)
		}
	}
}

func TestNegativeBoostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue(WithBoost(-1))
}
