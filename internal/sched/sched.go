// Package sched implements the framework master's ready-queue discipline.
//
// The baseline order is FIFO over ready times (§III-D assumes the expected
// scheduling algorithm is FIFO). On top of that, WIRE's Condor patch gives
// the first five ready-to-run tasks of every stage high priority (§III-C),
// so each stage yields early completions for the online predictor as soon
// as possible. Both behaviours live here, plus an optional submission-order
// permutation used by the Figure 4 task-order study (§IV-D).
package sched

import (
	"container/heap"
	"fmt"

	"repro/internal/dag"
	"repro/internal/simtime"
)

// PriorityTasksPerStage is the number of early tasks per stage that are
// boosted ahead of the FIFO order (the paper's "first five").
const PriorityTasksPerStage = 5

// Item is one ready task waiting for a slot.
type Item struct {
	Task    dag.TaskID
	Stage   dag.StageID
	ReadyAt simtime.Time
	// Priority marks one of the first-five ready tasks of its stage.
	Priority bool
	// order is the FIFO tie-break rank (submission-order index).
	order int
	index int
}

// Queue is a ready queue with the first-five-per-stage boost. The zero
// value is not usable; call NewQueue.
type Queue struct {
	h          itemHeap
	stageCount map[dag.StageID]int
	orderOf    func(dag.TaskID) int
	boost      int
}

// Option configures a Queue.
type Option func(*Queue)

// WithOrder supplies a submission-order permutation: orderOf(task) is the
// task's rank. Tasks becoming ready at the same instant are dequeued in
// rank order, which is how the Figure 4 experiments realize their five
// random task orders per stage.
func WithOrder(orderOf func(dag.TaskID) int) Option {
	return func(q *Queue) { q.orderOf = orderOf }
}

// WithBoost overrides how many early tasks per stage are prioritized.
// Zero disables the first-five rule (pure FIFO).
func WithBoost(n int) Option {
	return func(q *Queue) {
		if n < 0 {
			panic(fmt.Sprintf("sched: negative boost %d", n))
		}
		q.boost = n
	}
}

// NewQueue returns an empty ready queue.
func NewQueue(opts ...Option) *Queue {
	q := &Queue{
		stageCount: make(map[dag.StageID]int),
		orderOf:    func(t dag.TaskID) int { return int(t) },
		boost:      PriorityTasksPerStage,
	}
	for _, o := range opts {
		o(q)
	}
	return q
}

// Push enqueues a task that just became ready. The first `boost` pushes for
// each stage are flagged high priority.
func (q *Queue) Push(task dag.TaskID, stage dag.StageID, readyAt simtime.Time) {
	n := q.stageCount[stage]
	q.stageCount[stage] = n + 1
	it := &Item{
		Task:     task,
		Stage:    stage,
		ReadyAt:  readyAt,
		Priority: n < q.boost,
		order:    q.orderOf(task),
	}
	heap.Push(&q.h, it)
}

// Requeue re-enqueues a task whose execution was killed by an instance
// release. It keeps its original priority flag (the stage counter is not
// re-incremented) and re-enters the FIFO order at its new ready time.
func (q *Queue) Requeue(task dag.TaskID, stage dag.StageID, readyAt simtime.Time, priority bool) {
	it := &Item{Task: task, Stage: stage, ReadyAt: readyAt, Priority: priority, order: q.orderOf(task)}
	heap.Push(&q.h, it)
}

// Pop dequeues the next task, or ok=false when empty.
func (q *Queue) Pop() (Item, bool) {
	if q.h.Len() == 0 {
		return Item{}, false
	}
	it := heap.Pop(&q.h).(*Item)
	return *it, true
}

// Peek returns the next task without removing it.
func (q *Queue) Peek() (Item, bool) {
	if q.h.Len() == 0 {
		return Item{}, false
	}
	return *q.h[0], true
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int { return q.h.Len() }

// Snapshot returns the queued items in dequeue order without disturbing the
// queue; the lookahead simulator uses it to replicate dispatch order.
func (q *Queue) Snapshot() []Item {
	tmp := make(itemHeap, len(q.h))
	for i, it := range q.h {
		cp := *it
		tmp[i] = &cp
		tmp[i].index = i
	}
	out := make([]Item, 0, len(tmp))
	for tmp.Len() > 0 {
		out = append(out, *heap.Pop(&tmp).(*Item))
	}
	return out
}

// itemHeap orders by (priority desc, readyAt, order, task).
type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Priority != b.Priority {
		return a.Priority
	}
	if a.ReadyAt != b.ReadyAt {
		return a.ReadyAt < b.ReadyAt
	}
	if a.order != b.order {
		return a.order < b.order
	}
	return a.Task < b.Task
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
