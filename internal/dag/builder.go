package dag

import "fmt"

// builderChunk is the slab granularity of the builder's task arena: tasks
// are allocated 256 at a time so building a workflow costs O(tasks/256)
// allocations instead of one per task.
const builderChunk = 256

// Builder incrementally assembles a workflow. It assigns dense task and
// stage IDs, derives Succs from Deps, and validates the result on Build.
//
// Tasks and dependency lists are carved out of builder-owned arenas; the
// finished Workflow keeps them alive, so the arenas cost nothing beyond the
// data itself.
type Builder struct {
	name   string
	tasks  []*Task
	stages []*Stage
	arena  [][]Task
	deps   []TaskID
	err    error
}

// NewBuilder returns a builder for a workflow with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddStage creates a new stage and returns its ID.
func (b *Builder) AddStage(name string) StageID {
	id := StageID(len(b.stages))
	b.stages = append(b.stages, &Stage{ID: id, Name: name})
	return id
}

// takeDeps copies deps into the dependency arena and returns the stable
// sub-slice. Growth reallocates the arena, but previously returned slices
// keep pointing at the old backing array, so they stay valid; the capped
// capacity keeps later appends from ever writing into a returned slice.
func (b *Builder) takeDeps(deps []TaskID) []TaskID {
	if len(deps) == 0 {
		return nil
	}
	n := len(b.deps)
	b.deps = append(b.deps, deps...)
	return b.deps[n : n+len(deps) : n+len(deps)]
}

// AddTask creates a task in the given stage and returns its ID. Times are in
// seconds, sizes in MB. Dependencies must reference already-created tasks;
// the deps slice is copied, so callers may reuse it.
func (b *Builder) AddTask(stage StageID, name string, execTime, transferTime, inputSize float64, deps ...TaskID) TaskID {
	if b.err != nil {
		return -1
	}
	if int(stage) < 0 || int(stage) >= len(b.stages) {
		b.err = fmt.Errorf("dag: AddTask(%q): unknown stage %d", name, stage)
		return -1
	}
	id := TaskID(len(b.tasks))
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(b.tasks) {
			b.err = fmt.Errorf("dag: AddTask(%q): dependency %d not yet created", name, d)
			return -1
		}
	}
	if int(id)/builderChunk == len(b.arena) {
		b.arena = append(b.arena, make([]Task, builderChunk))
	}
	t := &b.arena[int(id)/builderChunk][int(id)%builderChunk]
	*t = Task{
		ID:           id,
		Stage:        stage,
		Name:         name,
		Deps:         b.takeDeps(deps),
		ExecTime:     execTime,
		TransferTime: transferTime,
		InputSize:    inputSize,
	}
	b.tasks = append(b.tasks, t)
	b.stages[stage].Tasks = append(b.stages[stage].Tasks, id)
	return id
}

// SetOutputSize records the output volume of a task (optional metadata).
func (b *Builder) SetOutputSize(id TaskID, size float64) {
	if b.err != nil || int(id) < 0 || int(id) >= len(b.tasks) {
		return
	}
	b.tasks[id].OutputSize = size
}

// Build finalizes the workflow: derives successor lists and validates.
// Successor lists are carved from one exactly-sized slab (two allocations
// for the whole workflow, not one per edge).
func (b *Builder) Build() (*Workflow, error) {
	if b.err != nil {
		return nil, b.err
	}
	counts := make([]int32, len(b.tasks))
	total := 0
	for _, t := range b.tasks {
		total += len(t.Deps)
		for _, d := range t.Deps {
			counts[d]++
		}
	}
	slab := make([]TaskID, total)
	off := 0
	for _, t := range b.tasks {
		c := int(counts[t.ID])
		if c == 0 {
			t.Succs = nil // match the omitted-field shape of decoded workflows
			continue
		}
		t.Succs = slab[off:off : off+c]
		off += c
	}
	for _, t := range b.tasks {
		for _, d := range t.Deps {
			dt := b.tasks[d]
			dt.Succs = append(dt.Succs, t.ID)
		}
	}
	w := &Workflow{Name: b.name, Tasks: b.tasks, Stages: b.stages}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustBuild is Build for construction code where an error is a programming
// bug (e.g. the named Table I generators).
func (b *Builder) MustBuild() *Workflow {
	w, err := b.Build()
	if err != nil {
		panic(err)
	}
	return w
}
