package dag

import "fmt"

// Builder incrementally assembles a workflow. It assigns dense task and
// stage IDs, derives Succs from Deps, and validates the result on Build.
type Builder struct {
	name   string
	tasks  []*Task
	stages []*Stage
	err    error
}

// NewBuilder returns a builder for a workflow with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddStage creates a new stage and returns its ID.
func (b *Builder) AddStage(name string) StageID {
	id := StageID(len(b.stages))
	b.stages = append(b.stages, &Stage{ID: id, Name: name})
	return id
}

// AddTask creates a task in the given stage and returns its ID. Times are in
// seconds, sizes in MB. Dependencies must reference already-created tasks.
func (b *Builder) AddTask(stage StageID, name string, execTime, transferTime, inputSize float64, deps ...TaskID) TaskID {
	if b.err != nil {
		return -1
	}
	if int(stage) < 0 || int(stage) >= len(b.stages) {
		b.err = fmt.Errorf("dag: AddTask(%q): unknown stage %d", name, stage)
		return -1
	}
	id := TaskID(len(b.tasks))
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(b.tasks) {
			b.err = fmt.Errorf("dag: AddTask(%q): dependency %d not yet created", name, d)
			return -1
		}
	}
	t := &Task{
		ID:           id,
		Stage:        stage,
		Name:         name,
		Deps:         append([]TaskID(nil), deps...),
		ExecTime:     execTime,
		TransferTime: transferTime,
		InputSize:    inputSize,
	}
	b.tasks = append(b.tasks, t)
	b.stages[stage].Tasks = append(b.stages[stage].Tasks, id)
	return id
}

// SetOutputSize records the output volume of a task (optional metadata).
func (b *Builder) SetOutputSize(id TaskID, size float64) {
	if b.err != nil || int(id) < 0 || int(id) >= len(b.tasks) {
		return
	}
	b.tasks[id].OutputSize = size
}

// Build finalizes the workflow: derives successor lists and validates.
func (b *Builder) Build() (*Workflow, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, t := range b.tasks {
		t.Succs = nil
	}
	for _, t := range b.tasks {
		for _, d := range t.Deps {
			b.tasks[d].Succs = append(b.tasks[d].Succs, t.ID)
		}
	}
	w := &Workflow{Name: b.name, Tasks: b.tasks, Stages: b.stages}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustBuild is Build for construction code where an error is a programming
// bug (e.g. the named Table I generators).
func (b *Builder) MustBuild() *Workflow {
	w, err := b.Build()
	if err != nil {
		panic(err)
	}
	return w
}
