package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds:
//
//	   a
//	 /   \
//	b     c
//	 \   /
//	   d
func diamond(t *testing.T) *Workflow {
	t.Helper()
	b := NewBuilder("diamond")
	s0 := b.AddStage("root")
	s1 := b.AddStage("mid")
	s2 := b.AddStage("sink")
	a := b.AddTask(s0, "a", 10, 1, 100)
	x := b.AddTask(s1, "b", 20, 2, 50, a)
	y := b.AddTask(s1, "c", 30, 3, 60, a)
	b.AddTask(s2, "d", 5, 0.5, 10, x, y)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuilderBasics(t *testing.T) {
	w := diamond(t)
	if w.NumTasks() != 4 || w.NumStages() != 3 {
		t.Fatalf("tasks=%d stages=%d", w.NumTasks(), w.NumStages())
	}
	if got := w.Roots(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Roots = %v", got)
	}
	a := w.Task(0)
	if len(a.Succs) != 2 {
		t.Fatalf("a.Succs = %v", a.Succs)
	}
	d := w.Task(3)
	if len(d.Deps) != 2 {
		t.Fatalf("d.Deps = %v", d.Deps)
	}
	if w.Task(1).Occupancy() != 22 {
		t.Fatalf("Occupancy = %v", w.Task(1).Occupancy())
	}
}

func TestAggregateTimes(t *testing.T) {
	w := diamond(t)
	if got := w.AggregateExecTime(); got != 65 {
		t.Fatalf("AggregateExecTime = %v", got)
	}
	if got := w.AggregateOccupancy(); got != 71.5 {
		t.Fatalf("AggregateOccupancy = %v", got)
	}
	if got := w.StageMeanExecTime(1); got != 25 {
		t.Fatalf("StageMeanExecTime = %v", got)
	}
}

func TestStageWidths(t *testing.T) {
	w := diamond(t)
	widths := w.StageWidths()
	want := []int{1, 2, 1}
	for i := range want {
		if widths[i] != want[i] {
			t.Fatalf("widths = %v", widths)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	w := diamond(t)
	order := w.TopoOrder()
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, task := range w.Tasks {
		for _, d := range task.Deps {
			if pos[d] >= pos[task.ID] {
				t.Fatalf("dependency %d not before %d in %v", d, task.ID, order)
			}
		}
	}
}

func TestCriticalPath(t *testing.T) {
	w := diamond(t)
	// a(11) -> c(33) -> d(5.5) = 49.5
	if got := w.CriticalPathExec(); got != 49.5 {
		t.Fatalf("CriticalPathExec = %v", got)
	}
}

func TestWidthProfile(t *testing.T) {
	w := diamond(t)
	p := w.WidthProfile()
	want := []int{1, 2, 1}
	if len(p) != len(want) {
		t.Fatalf("profile = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("profile = %v", p)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	s := b.AddStage("s")
	b.AddTask(s, "x", 1, 0, 0, TaskID(7)) // dep not yet created
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for forward dependency")
	}

	b2 := NewBuilder("bad2")
	b2.AddTask(StageID(3), "x", 1, 0, 0) // missing stage
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for missing stage")
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	w := diamond(t)
	// Introduce a cycle a -> d -> a by hand.
	w.Tasks[0].Deps = []TaskID{3}
	w.Tasks[3].Succs = append(w.Tasks[3].Succs, 0)
	if err := w.Validate(); err == nil {
		t.Fatal("expected cycle to be detected")
	}
}

func TestValidateDetectsBadSuccs(t *testing.T) {
	w := diamond(t)
	w.Tasks[0].Succs = w.Tasks[0].Succs[:1]
	if err := w.Validate(); err == nil {
		t.Fatal("expected succs mismatch to be detected")
	}
}

func TestValidateDetectsSelfDep(t *testing.T) {
	w := diamond(t)
	w.Tasks[2].Deps = append(w.Tasks[2].Deps, 2)
	if err := w.Validate(); err == nil {
		t.Fatal("expected self-dependency to be detected")
	}
}

func TestValidateDetectsStageMismatch(t *testing.T) {
	w := diamond(t)
	w.Tasks[1].Stage = 2
	if err := w.Validate(); err == nil {
		t.Fatal("expected stage-membership mismatch to be detected")
	}
}

func TestValidateDetectsNegativeTime(t *testing.T) {
	w := diamond(t)
	w.Tasks[1].ExecTime = -1
	if err := w.Validate(); err == nil {
		t.Fatal("expected negative time to be detected")
	}
}

func TestSetOutputSize(t *testing.T) {
	b := NewBuilder("o")
	s := b.AddStage("s")
	id := b.AddTask(s, "x", 1, 0, 0)
	b.SetOutputSize(id, 42)
	b.SetOutputSize(TaskID(99), 1) // out of range: ignored
	w := b.MustBuild()
	if w.Task(id).OutputSize != 42 {
		t.Fatal("output size not recorded")
	}
}

// randomLayered builds a random layered DAG: tasks in layer k depend on a
// random subset of layer k-1. Used for property tests.
func randomLayered(seed int64) *Workflow {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("random")
	layers := rng.Intn(5) + 1
	var prev []TaskID
	for l := 0; l < layers; l++ {
		st := b.AddStage("layer")
		width := rng.Intn(6) + 1
		var cur []TaskID
		for i := 0; i < width; i++ {
			var deps []TaskID
			for _, p := range prev {
				if rng.Float64() < 0.5 {
					deps = append(deps, p)
				}
			}
			// Guarantee connectivity past layer 0.
			if l > 0 && len(deps) == 0 {
				deps = append(deps, prev[rng.Intn(len(prev))])
			}
			id := b.AddTask(st, "t", rng.Float64()*100, rng.Float64()*10, rng.Float64()*1000, deps...)
			cur = append(cur, id)
		}
		prev = cur
	}
	return b.MustBuild()
}

func TestRandomDAGsValidateAndTopo(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		if err := w.Validate(); err != nil {
			return false
		}
		order := w.TopoOrder()
		if len(order) != w.NumTasks() {
			return false
		}
		pos := make(map[TaskID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, task := range w.Tasks {
			for _, d := range task.Deps {
				if pos[d] >= pos[task.ID] {
					return false
				}
			}
		}
		// Critical path never exceeds the aggregate occupancy and is at
		// least the longest single task.
		cp := w.CriticalPathExec()
		if cp > w.AggregateOccupancy()+1e-9 {
			return false
		}
		for _, task := range w.Tasks {
			if cp < task.Occupancy()-1e-9 {
				return false
			}
		}
		// Width profile covers all tasks.
		sum := 0
		for _, n := range w.WidthProfile() {
			sum += n
		}
		return sum == w.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
