// Package dag defines the workflow model shared by the execution simulator,
// the predictor, and the steering policy.
//
// A workflow is a static DAG of tasks (§I): each task is the unit of
// computation and resource consumption, and a *stage* groups tasks that
// share an executable and the same set of predecessor stages. Ground-truth
// execution and data-transfer times live on the task (they come from the
// workload generator or a recorded trace); the controller never reads them
// directly — it only sees what the monitoring API exposes.
package dag

import (
	"fmt"
	"slices"
)

// TaskID identifies a task within one workflow; IDs are dense indices into
// Workflow.Tasks.
type TaskID int

// StageID identifies a stage within one workflow; IDs are dense indices into
// Workflow.Stages.
type StageID int

// Task is one schedulable unit of a workflow. The json tags define the
// stable wire format used when workflows travel inside monitoring
// snapshots (the names match internal/dagio's document fields).
type Task struct {
	ID    TaskID  `json:"id"`
	Stage StageID `json:"stage"`
	Name  string  `json:"name,omitempty"`

	// Deps lists predecessor tasks; the task becomes ready only when all
	// of them have completed. Succs is the derived inverse relation.
	Deps  []TaskID `json:"deps,omitempty"`
	Succs []TaskID `json:"succs,omitempty"`

	// InputSize is the task's input data volume in MB. It is visible to
	// the monitor (frameworks record it for every task, §II-C) and is the
	// feature of the online-gradient-descent model (Algorithm 1).
	InputSize float64 `json:"input_size_mb,omitempty"`
	// OutputSize is the produced data volume in MB (informational).
	OutputSize float64 `json:"output_size_mb,omitempty"`

	// ExecTime is the ground-truth execution time in seconds on a
	// reference slot. TransferTime is the ground-truth data-transfer
	// portion of the slot occupancy. The simulator may perturb both with
	// an interference model at assignment time.
	ExecTime     float64 `json:"exec_time_s"`
	TransferTime float64 `json:"transfer_time_s,omitempty"`
}

// Occupancy returns the task's nominal slot occupancy: execution plus data
// transfer (§III-B1).
func (t *Task) Occupancy() float64 { return t.ExecTime + t.TransferTime }

// Stage groups peer tasks that share an executable and dependencies.
type Stage struct {
	ID    StageID  `json:"id"`
	Name  string   `json:"name,omitempty"`
	Tasks []TaskID `json:"tasks,omitempty"`
}

// Workflow is an immutable task DAG. Build one with a Builder and treat it
// as read-only afterwards; simulators keep their mutable run state in
// parallel structures indexed by TaskID.
type Workflow struct {
	Name   string   `json:"name"`
	Tasks  []*Task  `json:"tasks"`
	Stages []*Stage `json:"stages"`
}

// Task returns the task with the given ID.
func (w *Workflow) Task(id TaskID) *Task { return w.Tasks[id] }

// Stage returns the stage with the given ID.
func (w *Workflow) Stage(id StageID) *Stage { return w.Stages[id] }

// NumTasks returns the number of tasks.
func (w *Workflow) NumTasks() int { return len(w.Tasks) }

// NumStages returns the number of stages.
func (w *Workflow) NumStages() int { return len(w.Stages) }

// Roots returns the tasks with no predecessors, in ID order.
func (w *Workflow) Roots() []TaskID {
	var out []TaskID
	for _, t := range w.Tasks {
		if len(t.Deps) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// AggregateExecTime returns the sum of ground-truth execution times over all
// tasks, in seconds (Table I's "Aggregate Task Execution Time").
func (w *Workflow) AggregateExecTime() float64 {
	s := 0.0
	for _, t := range w.Tasks {
		s += t.ExecTime
	}
	return s
}

// AggregateOccupancy returns the sum of ground-truth slot occupancies
// (execution + transfer) over all tasks, in seconds.
func (w *Workflow) AggregateOccupancy() float64 {
	s := 0.0
	for _, t := range w.Tasks {
		s += t.Occupancy()
	}
	return s
}

// StageMeanExecTime returns the mean ground-truth execution time of a stage.
func (w *Workflow) StageMeanExecTime(id StageID) float64 {
	st := w.Stages[id]
	if len(st.Tasks) == 0 {
		return 0
	}
	s := 0.0
	for _, tid := range st.Tasks {
		s += w.Tasks[tid].ExecTime
	}
	return s / float64(len(st.Tasks))
}

// StageWidths returns the task count of every stage in stage order.
func (w *Workflow) StageWidths() []int {
	out := make([]int, len(w.Stages))
	for i, st := range w.Stages {
		out[i] = len(st.Tasks)
	}
	return out
}

// TopoOrder returns a topological order of the task IDs. Validate is assumed
// to have passed (Builder.Build enforces acyclicity), so this cannot fail.
func (w *Workflow) TopoOrder() []TaskID {
	indeg := make([]int, len(w.Tasks))
	for _, t := range w.Tasks {
		indeg[t.ID] = len(t.Deps)
	}
	queue := make([]TaskID, 0, len(w.Tasks))
	for _, t := range w.Tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
		}
	}
	order := make([]TaskID, 0, len(w.Tasks))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range w.Tasks[id].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return order
}

// CriticalPathExec returns the length in seconds of the longest
// occupancy-weighted path through the DAG: a lower bound on makespan with
// unlimited parallelism and no overheads.
func (w *Workflow) CriticalPathExec() float64 {
	longest := make([]float64, len(w.Tasks))
	best := 0.0
	for _, id := range w.TopoOrder() {
		t := w.Tasks[id]
		start := 0.0
		for _, d := range t.Deps {
			if longest[d] > start {
				start = longest[d]
			}
		}
		longest[id] = start + t.Occupancy()
		if longest[id] > best {
			best = longest[id]
		}
	}
	return best
}

// WidthProfile returns, for each level of the DAG (longest dependency chain
// length from a root), the number of tasks at that level. It exposes the
// varying available parallelism that motivates elastic scaling (§I).
func (w *Workflow) WidthProfile() []int {
	level := make([]int, len(w.Tasks))
	maxLevel := 0
	for _, id := range w.TopoOrder() {
		t := w.Tasks[id]
		l := 0
		for _, d := range t.Deps {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	profile := make([]int, maxLevel+1)
	for _, l := range level {
		profile[l]++
	}
	return profile
}

// Validate checks structural invariants: dense IDs, tasks assigned to
// existing stages, dependency references in range, consistent Succs, no
// self-dependency, and acyclicity. Builder.Build calls it; it is exported so
// deserialized workflows can be checked too.
func (w *Workflow) Validate() error {
	for i, t := range w.Tasks {
		if t == nil {
			return fmt.Errorf("dag: task %d is nil", i)
		}
		if int(t.ID) != i {
			return fmt.Errorf("dag: task at index %d has ID %d", i, t.ID)
		}
		if int(t.Stage) < 0 || int(t.Stage) >= len(w.Stages) {
			return fmt.Errorf("dag: task %d references missing stage %d", t.ID, t.Stage)
		}
		if t.ExecTime < 0 || t.TransferTime < 0 {
			return fmt.Errorf("dag: task %d has negative time", t.ID)
		}
		for _, d := range t.Deps {
			if int(d) < 0 || int(d) >= len(w.Tasks) {
				return fmt.Errorf("dag: task %d depends on missing task %d", t.ID, d)
			}
			if d == t.ID {
				return fmt.Errorf("dag: task %d depends on itself", t.ID)
			}
		}
	}
	for i, st := range w.Stages {
		if st == nil {
			return fmt.Errorf("dag: stage %d is nil", i)
		}
		if int(st.ID) != i {
			return fmt.Errorf("dag: stage at index %d has ID %d", i, st.ID)
		}
		for _, tid := range st.Tasks {
			if int(tid) < 0 || int(tid) >= len(w.Tasks) {
				return fmt.Errorf("dag: stage %d lists missing task %d", st.ID, tid)
			}
			if w.Tasks[tid].Stage != st.ID {
				return fmt.Errorf("dag: task %d listed in stage %d but assigned to %d", tid, st.ID, w.Tasks[tid].Stage)
			}
		}
	}
	// Every task must appear in exactly one stage task list.
	seen := make([]int, len(w.Tasks))
	for _, st := range w.Stages {
		for _, tid := range st.Tasks {
			seen[tid]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			return fmt.Errorf("dag: task %d appears in %d stage lists", id, n)
		}
	}
	// Succs must be the exact inverse of Deps. Compare the two edge
	// multisets as packed (from, to) keys sorted once — no per-task maps or
	// slice copies, which dominated validation cost on wide fan-in graphs.
	succCount := make([]int32, len(w.Tasks))
	edges := 0
	for _, t := range w.Tasks {
		edges += len(t.Deps)
		for _, d := range t.Deps {
			succCount[d]++
		}
	}
	for _, t := range w.Tasks {
		if len(t.Succs) != int(succCount[t.ID]) {
			return fmt.Errorf("dag: task %d has %d succs, want %d", t.ID, len(t.Succs), succCount[t.ID])
		}
		for _, s := range t.Succs {
			if int(s) < 0 || int(s) >= len(w.Tasks) {
				return fmt.Errorf("dag: task %d lists missing succ %d", t.ID, s)
			}
		}
	}
	want := make([]int64, 0, 2*edges)
	got := want[edges : edges : 2*edges]
	want = want[0:0:edges]
	for _, t := range w.Tasks {
		for _, d := range t.Deps {
			want = append(want, int64(d)<<32|int64(t.ID))
		}
		for _, s := range t.Succs {
			got = append(got, int64(t.ID)<<32|int64(s))
		}
	}
	slices.Sort(want)
	slices.Sort(got)
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("dag: task %d succs mismatch", want[i]>>32)
		}
	}
	// Acyclicity: topological order must cover all tasks.
	if got := len(w.TopoOrder()); got != len(w.Tasks) {
		return fmt.Errorf("dag: cycle detected (topo order covers %d of %d tasks)", got, len(w.Tasks))
	}
	return nil
}
