package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComparisons(t *testing.T) {
	if !Before(1, 2) || Before(2, 1) || Before(1, 1) {
		t.Fatal("Before misbehaves")
	}
	if !After(2, 1) || After(1, 2) || After(1, 1) {
		t.Fatal("After misbehaves")
	}
	if !Equal(1, 1+Eps/2) || Equal(1, 1.1) {
		t.Fatal("Equal misbehaves")
	}
	if !AtOrBefore(1, 1) || !AtOrBefore(1, 2) || AtOrBefore(2, 1) {
		t.Fatal("AtOrBefore misbehaves")
	}
	if !AtOrAfter(1, 1) || !AtOrAfter(2, 1) || AtOrAfter(1, 2) {
		t.Fatal("AtOrAfter misbehaves")
	}
}

func TestNextBoundary(t *testing.T) {
	cases := []struct {
		origin, now Time
		period      Duration
		want        Time
	}{
		{0, 0, 60, 60},
		{0, 59, 60, 60},
		{0, 60, 60, 120}, // exactly on a boundary: next one is strictly later
		{0, 61, 60, 120},
		{10, 10, 60, 70},
		{10, 69, 60, 70},
		{10, 70, 60, 130},
		{100, 50, 60, 100}, // before origin: first boundary is origin itself
	}
	for _, c := range cases {
		got := NextBoundary(c.origin, c.period, c.now)
		if !Equal(got, c.want) {
			t.Errorf("NextBoundary(%v,%v,%v) = %v, want %v", c.origin, c.period, c.now, got, c.want)
		}
	}
}

func TestNextBoundaryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive period")
		}
	}()
	NextBoundary(0, 0, 10)
}

func TestNextBoundaryAlwaysAfterNow(t *testing.T) {
	f := func(origin, now float64, periodRaw float64) bool {
		period := math.Mod(math.Abs(periodRaw), 1e6) + 1e-3
		origin = math.Mod(origin, 1e9)
		now = math.Mod(math.Abs(now), 1e9)
		b := NextBoundary(origin, period, now)
		return After(b, now) || Equal(b, origin) && now < origin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitsCharged(t *testing.T) {
	cases := []struct {
		start, end Time
		u          Duration
		want       int
	}{
		{0, 0, 60, 0},
		{0, 1, 60, 1},
		{0, 60, 60, 1},
		{0, 61, 60, 2},
		{0, 120, 60, 2},
		{30, 90, 60, 1},
		{0, 3600, 60, 60},
		{10, 5, 60, 0}, // negative span is free
	}
	for _, c := range cases {
		if got := UnitsCharged(c.start, c.end, c.u); got != c.want {
			t.Errorf("UnitsCharged(%v,%v,%v) = %d, want %d", c.start, c.end, c.u, got, c.want)
		}
	}
}

func TestUnitsChargedMonotone(t *testing.T) {
	f := func(spanRaw, extraRaw float64) bool {
		span := math.Mod(math.Abs(spanRaw), 1e6)
		extra := math.Mod(math.Abs(extraRaw), 1e6)
		u := 60.0
		return UnitsCharged(0, span+extra, u) >= UnitsCharged(0, span, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitsChargedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive unit")
		}
	}()
	UnitsCharged(0, 10, 0)
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{30, "30s"},
		{90, "1.5m"},
		{3600, "1h"},
		{5400, "1.5h"},
		{0.25, "0.25s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
