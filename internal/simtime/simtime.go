// Package simtime defines the time conventions shared by the WIRE
// simulation stack.
//
// All simulated clocks are continuous and measured in seconds from the
// start of the run. Using a plain float64 keeps the discrete-event engine,
// the steering algebra (Algorithm 3 accumulates fractional occupancy), and
// the statistics code free of unit conversions; helpers in this package
// keep boundary arithmetic (charging units, MAPE intervals) in one place.
package simtime

import (
	"fmt"
	"math"
)

// Time is an absolute simulated time in seconds since the start of a run.
type Time = float64

// Duration is a span of simulated time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
)

// Eps is the tolerance used when comparing simulated times. Event times are
// produced by sums of generated durations; exact float equality is not
// meaningful at charging boundaries.
const Eps = 1e-9

// Before reports whether a is strictly before b beyond tolerance.
func Before(a, b Time) bool { return a < b-Eps }

// After reports whether a is strictly after b beyond tolerance.
func After(a, b Time) bool { return a > b+Eps }

// Equal reports whether a and b denote the same instant within tolerance.
func Equal(a, b Time) bool { return math.Abs(a-b) <= Eps }

// AtOrBefore reports whether a is at or before b within tolerance.
func AtOrBefore(a, b Time) bool { return a <= b+Eps }

// AtOrAfter reports whether a is at or after b within tolerance.
func AtOrAfter(a, b Time) bool { return a >= b-Eps }

// NextBoundary returns the first multiple of period that is strictly after
// now, measured from origin. It is used to find the next charging boundary
// of an instance whose billing started at origin.
//
// NextBoundary panics if period is not positive.
func NextBoundary(origin Time, period Duration, now Time) Time {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %v", period))
	}
	elapsed := now - origin
	if elapsed < 0 {
		return origin
	}
	k := math.Floor(elapsed/period + Eps)
	b := origin + (k+1)*period
	// Guard against k undershooting when elapsed is an exact multiple.
	if !After(b, now) {
		b += period
	}
	return b
}

// UnitsCharged returns the number of whole charging units billed for an
// instance active on [start, end] with charging unit u: ceil((end-start)/u),
// with a minimum of one unit for any strictly positive occupancy. A zero or
// negative span costs nothing.
func UnitsCharged(start, end Time, u Duration) int {
	if u <= 0 {
		panic(fmt.Sprintf("simtime: non-positive charging unit %v", u))
	}
	span := end - start
	if span <= Eps {
		return 0
	}
	units := math.Ceil(span/u - Eps)
	if units < 1 {
		units = 1
	}
	return int(units)
}

// FormatDuration renders a duration compactly for reports, e.g. "3m", "1.5h".
func FormatDuration(d Duration) string {
	switch {
	case d >= Hour:
		return trimZero(d/Hour) + "h"
	case d >= Minute:
		return trimZero(d/Minute) + "m"
	default:
		return trimZero(d) + "s"
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
