package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestDecisionJSONRoundTrip verifies the decision wire format loses nothing:
// decisions travel back from wire-serve's plan endpoint as JSON and must
// decode to the exact in-process value.
func TestDecisionJSONRoundTrip(t *testing.T) {
	cases := []Decision{
		{},
		{Launch: 3},
		{Releases: []ReleaseOrder{{Instance: 4}}},
		{Launch: 1, Releases: []ReleaseOrder{
			{Instance: 0, AtBoundary: true},
			{Instance: 7},
			{Instance: 2, AtBoundary: true},
		}},
	}
	for i, dec := range cases {
		b, err := json.Marshal(dec)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var got Decision
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(got, dec) {
			t.Errorf("case %d: round trip %s -> %+v, want %+v", i, b, got, dec)
		}
	}
}

// TestDecisionJSONStableNames pins the field names: they are part of the
// public service API and must not drift with Go identifier renames.
func TestDecisionJSONStableNames(t *testing.T) {
	dec := Decision{Launch: 2, Releases: []ReleaseOrder{{Instance: 5, AtBoundary: true}}}
	b, err := json.Marshal(dec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"launch":2,"releases":[{"instance":5,"at_boundary":true}]}`
	if string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
}
