package sim

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/monitor"
	"repro/internal/simtime"
)

// holdController keeps the pool as-is.
type holdController struct{}

func (holdController) Name() string                    { return "hold" }
func (holdController) Plan(*monitor.Snapshot) Decision { return Decision{} }

// scriptController replays a fixed list of decisions, one per tick.
type scriptController struct {
	decisions []Decision
	i         int
	snaps     []*monitor.Snapshot
}

func (s *scriptController) Name() string { return "script" }
func (s *scriptController) Plan(snap *monitor.Snapshot) Decision {
	s.snaps = append(s.snaps, snap)
	if s.i < len(s.decisions) {
		d := s.decisions[s.i]
		s.i++
		return d
	}
	return Decision{}
}

func testCloud() cloud.Config {
	return cloud.Config{SlotsPerInstance: 1, LagTime: 10, ChargingUnit: 100, MaxInstances: 12}
}

func chain(n int, exec, transfer float64) *dag.Workflow {
	b := dag.NewBuilder("chain")
	st := b.AddStage("s")
	var prev dag.TaskID = -1
	for i := 0; i < n; i++ {
		if prev < 0 {
			prev = b.AddTask(st, "t", exec, transfer, 1)
		} else {
			prev = b.AddTask(st, "t", exec, transfer, 1, prev)
		}
	}
	return b.MustBuild()
}

func fan(n int, exec, transfer float64) *dag.Workflow {
	b := dag.NewBuilder("fan")
	st := b.AddStage("s")
	for i := 0; i < n; i++ {
		b.AddTask(st, "t", exec, transfer, 1)
	}
	return b.MustBuild()
}

func TestSingleTaskMakespan(t *testing.T) {
	wf := chain(1, 30, 5)
	res, err := Run(wf, holdController{}, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}
	// Instance active at lag=10, task occupies 35 s -> makespan 45.
	if !simtime.Equal(res.Makespan, 45) {
		t.Fatalf("makespan = %v, want 45", res.Makespan)
	}
	if len(res.TaskRuns) != 1 {
		t.Fatalf("task runs = %d", len(res.TaskRuns))
	}
	tr := res.TaskRuns[0]
	if tr.ObservedExec != 30 || tr.ObservedTransfer != 5 || tr.Start != 10 || tr.End != 45 {
		t.Fatalf("task run = %+v", tr)
	}
	if res.UnitsCharged != 1 {
		t.Fatalf("units = %d, want 1 (35s at u=100)", res.UnitsCharged)
	}
}

func TestChainRespectsDependencies(t *testing.T) {
	wf := chain(3, 10, 0)
	res, err := Run(wf, holdController{}, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}
	if !simtime.Equal(res.Makespan, 10+30) {
		t.Fatalf("makespan = %v, want 40", res.Makespan)
	}
	for i := 1; i < len(res.TaskRuns); i++ {
		if res.TaskRuns[i].Start < res.TaskRuns[i-1].End-simtime.Eps {
			t.Fatalf("task %d started before predecessor ended", i)
		}
	}
}

func TestSlotsLimitParallelism(t *testing.T) {
	cc := testCloud()
	cc.SlotsPerInstance = 2
	wf := fan(4, 10, 0)
	res, err := Run(wf, holdController{}, Config{Cloud: cc})
	if err != nil {
		t.Fatal(err)
	}
	// 4 tasks, 2 slots, 10s each: two waves -> 10+20 = 30.
	if !simtime.Equal(res.Makespan, 30) {
		t.Fatalf("makespan = %v, want 30", res.Makespan)
	}
}

func TestLaunchSpeedsUp(t *testing.T) {
	wf := fan(4, 100, 0)
	// Baseline: single instance, 1 slot -> 10 + 400 = 410.
	res1, err := Run(wf, holdController{}, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}
	if !simtime.Equal(res1.Makespan, 410) {
		t.Fatalf("baseline makespan = %v, want 410", res1.Makespan)
	}
	// Launch 3 more at the first tick (t=10): active at t=20.
	sc := &scriptController{decisions: []Decision{{Launch: 3}}}
	res2, err := Run(wf, sc, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}
	// Task0 on inst0 (10..110); tasks 1-3 start at 20, done at 120.
	if !simtime.Equal(res2.Makespan, 120) {
		t.Fatalf("scaled makespan = %v, want 120", res2.Makespan)
	}
	if res2.PeakPool != 4 || res2.Launches != 4 {
		t.Fatalf("peak=%d launches=%d", res2.PeakPool, res2.Launches)
	}
}

func TestReleaseKillsAndRequeues(t *testing.T) {
	wf := fan(1, 100, 0)
	// Tick 1 (t=10): task started at 10 on inst 0. Release it immediately
	// and launch a replacement; the task restarts on the new instance.
	sc := &scriptController{decisions: []Decision{
		{}, // t=10: task just started; do nothing
		{Launch: 1, Releases: []ReleaseOrder{{Instance: 0}}}, // t=20
	}}
	res, err := Run(wf, sc, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	// Killed at 20, replacement active at 30, runs 100 -> 130.
	if !simtime.Equal(res.Makespan, 130) {
		t.Fatalf("makespan = %v, want 130", res.Makespan)
	}
	if res.TaskRuns[0].Restarts != 1 {
		t.Fatalf("task restart count = %d", res.TaskRuns[0].Restarts)
	}
}

func TestReleaseAtBoundary(t *testing.T) {
	cc := testCloud()
	cc.ChargingUnit = 50
	wf := fan(1, 200, 0)
	// Instance 0 active at 10, boundaries at 60, 110, ... Order a
	// boundary release at t=20 and a replacement.
	sc := &scriptController{decisions: []Decision{
		{},
		{Launch: 1, Releases: []ReleaseOrder{{Instance: 0, AtBoundary: true}}}, // t=20
	}}
	res, err := Run(wf, sc, Config{Cloud: cc})
	if err != nil {
		t.Fatal(err)
	}
	// Task killed at boundary t=60 having run 50s; replacement active at
	// 30; restart at 60 on inst 1, runs 200 -> 260.
	if !simtime.Equal(res.Makespan, 260) {
		t.Fatalf("makespan = %v, want 260", res.Makespan)
	}
	// Instance 0 held 10..60 = exactly one 50s unit; instance 1 held
	// 30..260 = 230s -> 5 units. Total 6.
	if res.UnitsCharged != 6 {
		t.Fatalf("units = %d, want 6", res.UnitsCharged)
	}
}

func TestSnapshotContents(t *testing.T) {
	wf := fan(3, 100, 20)
	sc := &scriptController{}
	cc := testCloud()
	cc.SlotsPerInstance = 2
	_, err := Run(wf, sc, Config{Cloud: cc})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.snaps) == 0 {
		t.Fatal("no snapshots")
	}
	s0 := sc.snaps[0] // t=10: tasks 0,1 just started (active at 10)
	if s0.Now != 10 || s0.Interval != 10 {
		t.Fatalf("snapshot header: %+v", s0)
	}
	counts := s0.CountByState()
	if counts[monitor.Running] != 2 || counts[monitor.Ready] != 1 {
		t.Fatalf("state counts = %v", counts)
	}
	if s0.ActiveLoad() != 3 || s0.RemainingTasks() != 3 || s0.Done() {
		t.Fatal("load accessors wrong")
	}
	// t=40: transfers (20s) finished at t=30 -> observed in snapshot 3
	// (t=40) window (30,40]... transfer obs time is 30, within (20,30]:
	// snapshot at t=30 carries them.
	s2 := sc.snaps[2] // t=30
	if len(s2.RecentTransfers) != 2 {
		t.Fatalf("recent transfers at t=30 = %v", s2.RecentTransfers)
	}
	rec := s2.Task(0)
	if rec.State != monitor.Running || !rec.TransferObserved || rec.TransferTime != 20 {
		t.Fatalf("task record = %+v", rec)
	}
	if rec.Elapsed != 20 {
		t.Fatalf("elapsed = %v, want 20", rec.Elapsed)
	}
	if len(s2.Instances) != 1 || len(s2.Instances[0].Running) != 2 {
		t.Fatalf("instances = %+v", s2.Instances)
	}
}

func TestDeterminism(t *testing.T) {
	wf := fan(20, 50, 5)
	cfg := Config{Cloud: testCloud(), Seed: 7, Interference: dist.NewLognormalFromMean(1, 0.3)}
	r1, err := Run(wf, holdController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(wf, holdController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.UnitsCharged != r2.UnitsCharged {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", r1.Makespan, r1.UnitsCharged, r2.Makespan, r2.UnitsCharged)
	}
	for i := range r1.TaskRuns {
		if r1.TaskRuns[i] != r2.TaskRuns[i] {
			t.Fatalf("task run %d differs", i)
		}
	}
}

func TestInterferencePerturbsTimes(t *testing.T) {
	wf := fan(10, 50, 0)
	cfg := Config{Cloud: testCloud(), Seed: 3, Interference: dist.NewLognormalFromMean(1, 0.5)}
	res, err := Run(wf, holdController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, tr := range res.TaskRuns {
		if math.Abs(tr.ObservedExec-50) > 1 {
			varied = true
		}
		if tr.ObservedExec <= 0 {
			t.Fatal("non-positive observed time")
		}
	}
	if !varied {
		t.Fatal("interference had no effect")
	}
}

func TestOrderPermutation(t *testing.T) {
	wf := fan(3, 10, 0)
	order := map[dag.TaskID]int{0: 2, 1: 1, 2: 0}
	res, err := Run(wf, holdController{}, Config{Cloud: testCloud(), Order: order})
	if err != nil {
		t.Fatal(err)
	}
	want := []dag.TaskID{2, 1, 0}
	for i, tr := range res.TaskRuns {
		if tr.Task != want[i] {
			t.Fatalf("run order = %v at %d, want %v", tr.Task, i, want[i])
		}
	}
}

func TestUtilizationAccounting(t *testing.T) {
	cc := testCloud()
	cc.ChargingUnit = 100
	wf := chain(1, 90, 0)
	res, err := Run(wf, holdController{}, Config{Cloud: cc})
	if err != nil {
		t.Fatal(err)
	}
	// Busy 90s of a 100s charged unit with 1 slot -> 0.9.
	if math.Abs(res.Utilization-0.9) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.9", res.Utilization)
	}
}

func TestControllerProtocolViolation(t *testing.T) {
	wf := chain(1, 100, 0)
	sc := &scriptController{decisions: []Decision{
		{Releases: []ReleaseOrder{{Instance: 99}}},
	}}
	if _, err := Run(wf, sc, Config{Cloud: testCloud()}); err == nil {
		t.Fatal("expected error for unknown instance release")
	}
	sc2 := &scriptController{decisions: []Decision{{Launch: -1}}}
	if _, err := Run(wf, sc2, Config{Cloud: testCloud()}); err == nil {
		t.Fatal("expected error for negative launch")
	}
}

func TestHorizonGuard(t *testing.T) {
	// Release the only instance and never launch again: tasks can never
	// finish and the run must abort at the horizon.
	wf := chain(1, 1000, 0)
	sc := &scriptController{decisions: []Decision{
		{Releases: []ReleaseOrder{{Instance: 0}}},
	}}
	_, err := Run(wf, sc, Config{Cloud: testCloud(), MaxSimTime: 500})
	if err == nil {
		t.Fatal("expected horizon error")
	}
}

func TestLaunchBeyondCapIsBestEffort(t *testing.T) {
	cc := testCloud()
	cc.MaxInstances = 2
	wf := fan(6, 50, 0)
	sc := &scriptController{decisions: []Decision{{Launch: 10}}}
	res, err := Run(wf, sc, Config{Cloud: cc})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPool != 2 {
		t.Fatalf("peak pool = %d, want cap 2", res.PeakPool)
	}
}

func TestCancelPendingInstance(t *testing.T) {
	cc := testCloud()
	cc.LagTime = 25 // spans multiple ticks (interval defaults to lag)
	wf := chain(1, 100, 0)
	// Tick at t=25: first instance just active. Launch another (active at
	// 50), then release it while pending at the next tick (t=50 it
	// would activate; release order at t=50 arrives with activation...).
	// Use interval override to get a tick at 30 while pending.
	sc := &scriptController{decisions: []Decision{
		{Launch: 1}, // t=10
		{Releases: []ReleaseOrder{{Instance: 1}}}, // t=20: inst1 pending (active at 35)
	}}
	cfg := Config{Cloud: cc, Interval: 10}
	res, err := Run(wf, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Canceled pending instance must cost nothing.
	if res.UnitsCharged != 2 { // inst0: 25..125 = 100s at u=100 -> 1? wait
		// inst0 active at 25, task runs 25..125, makespan 125, held
		// 100s -> 1 unit. Canceled inst1 -> 0.
		if res.UnitsCharged != 1 {
			t.Fatalf("units = %d", res.UnitsCharged)
		}
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
}

func TestFirstFivePriorityAcrossStages(t *testing.T) {
	// Stage A: 8 tasks ready at t=0. Stage B: depends on A0; its first
	// tasks should jump the queue once ready.
	b := dag.NewBuilder("prio")
	sa := b.AddStage("A")
	sb := b.AddStage("B")
	a0 := b.AddTask(sa, "a0", 10, 0, 1)
	for i := 1; i < 8; i++ {
		b.AddTask(sa, "a", 10, 0, 1)
	}
	for i := 0; i < 2; i++ {
		b.AddTask(sb, "b", 10, 0, 1, a0)
	}
	wf := b.MustBuild()
	cc := testCloud()
	cc.SlotsPerInstance = 1
	res, err := Run(wf, holdController{}, Config{Cloud: cc})
	if err != nil {
		t.Fatal(err)
	}
	// With one slot: a0 runs first (10..20). B tasks become ready at 20.
	// Stage A tasks a1..a4 are also boosted (first five of A: a0..a4),
	// but B's first-five boost puts b tasks ahead of a5..a7 which are
	// unboosted. Expected order: a0, a1..a4 (boosted, earlier ready),
	// then b0,b1 (boosted, ready at 20) — wait, boosted a1..a4 ready at 0
	// come before b0,b1 ready at 20; a5..a7 unboosted come last.
	order := make([]string, 0, len(res.TaskRuns))
	for _, tr := range res.TaskRuns {
		order = append(order, wf.Task(tr.Task).Name)
	}
	// The last three runs must include a5..a7 (unboosted) after the b's.
	last3 := order[len(order)-3:]
	for _, n := range last3 {
		if n != "a" {
			t.Fatalf("expected unboosted stage-A stragglers last, got %v", order)
		}
	}
	// And the b tasks must appear before those stragglers.
	bSeen := 0
	for _, n := range order[:len(order)-3] {
		if n == "b" {
			bSeen++
		}
	}
	if bSeen != 2 {
		t.Fatalf("b tasks did not jump queue: %v", order)
	}
}

func TestPoolTimelineRecorded(t *testing.T) {
	wf := fan(2, 30, 0)
	res, err := Run(wf, holdController{}, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pool) == 0 {
		t.Fatal("no pool samples")
	}
	last := res.Pool[len(res.Pool)-1]
	if last.Held != 0 {
		t.Fatalf("pool not drained at end: %+v", last)
	}
}

func TestInstanceSpeedHeterogeneity(t *testing.T) {
	// With per-instance speed factors, the same nominal task takes
	// different times on different instances (§II-B).
	wf := fan(8, 100, 0)
	cc := testCloud()
	cc.SlotsPerInstance = 1
	sc := &scriptController{decisions: []Decision{{Launch: 7}}}
	res, err := Run(wf, sc, Config{
		Cloud:         cc,
		Seed:          5,
		InstanceSpeed: dist.Uniform{Lo: 0.5, Hi: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	byInst := map[cloud.InstanceID]float64{}
	for _, tr := range res.TaskRuns {
		byInst[tr.Instance] = tr.ObservedExec
	}
	if len(byInst) < 4 {
		t.Fatalf("tasks not spread over instances: %v", byInst)
	}
	distinct := map[float64]bool{}
	for _, v := range byInst {
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("instance speeds had no effect: %v", byInst)
	}
}

func TestInstanceSpeedDeterministic(t *testing.T) {
	wf := fan(6, 50, 0)
	cfg := Config{Cloud: testCloud(), Seed: 11, InstanceSpeed: dist.NewLognormalFromMean(1, 0.3)}
	a, err := Run(wf, holdController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wf, holdController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("instance speed sampling nondeterministic")
	}
}

func TestTransferCongestion(t *testing.T) {
	// Transfers slow down as the pool grows.
	wf := fan(4, 10, 10)
	cc := testCloud()
	cc.SlotsPerInstance = 4
	solo, err := Run(wf, holdController{}, Config{Cloud: cc, TransferCongestion: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Same workload with 4 instances: congestion factor 1 + 0.5*3 = 2.5.
	cc2 := testCloud()
	cc2.SlotsPerInstance = 1
	wide, err := Run(wf, holdController{}, Config{
		Cloud: cc2, TransferCongestion: 0.5, InitialInstances: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := solo.TaskRuns[0].ObservedTransfer; got != 10 {
		t.Fatalf("solo transfer = %v, want 10 (single instance, no congestion)", got)
	}
	// The four activations fire sequentially at t=10, so the dispatches
	// observe pools of 1..4 usable instances: transfers 10, 15, 20, 25.
	var lo, hi float64 = 1e9, 0
	for _, tr := range wide.TaskRuns {
		if tr.ObservedTransfer < lo {
			lo = tr.ObservedTransfer
		}
		if tr.ObservedTransfer > hi {
			hi = tr.ObservedTransfer
		}
	}
	if !simtime.Equal(lo, 10) || !simtime.Equal(hi, 25) {
		t.Fatalf("congested transfers span [%v,%v], want [10,25]", lo, hi)
	}
}

func TestFailureInjectionRecovers(t *testing.T) {
	// Frequent failures: the run must still complete, with restarts and
	// failures recorded, because the controller replenishes the pool.
	wf := fan(12, 40, 0)
	cc := testCloud()
	cc.SlotsPerInstance = 2
	res, err := Run(wf, reactiveRelauncher{}, Config{
		Cloud:      cc,
		Seed:       9,
		MTBF:       120, // mean two task-lengths
		MaxSimTime: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != 12 {
		t.Fatalf("completed %d tasks", len(res.TaskRuns))
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected at MTBF=120")
	}
	if res.Restarts == 0 {
		t.Fatal("failures killed no running tasks (statistically implausible here)")
	}
}

func TestFailureDeterministic(t *testing.T) {
	wf := fan(8, 30, 0)
	cfg := Config{Cloud: testCloud(), Seed: 4, MTBF: 100, MaxSimTime: 1e6}
	a, err := Run(wf, reactiveRelauncher{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wf, reactiveRelauncher{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures || a.Makespan != b.Makespan {
		t.Fatalf("failure injection nondeterministic: %d/%v vs %d/%v",
			a.Failures, a.Makespan, b.Failures, b.Makespan)
	}
}

// reactiveRelauncher keeps one instance alive: enough to guarantee progress
// under failure injection without depending on the full WIRE stack.
type reactiveRelauncher struct{}

func (reactiveRelauncher) Name() string { return "relauncher" }

func (reactiveRelauncher) Plan(snap *monitor.Snapshot) Decision {
	if snap.RemainingTasks() > 0 && len(snap.NonDrainingInstances()) == 0 {
		return Decision{Launch: 1}
	}
	return Decision{}
}

// scriptedFaults replays fixed launch fates and straggler delays.
type scriptedFaults struct {
	fates  []LaunchFate
	fi     int
	delays []simtime.Duration
	di     int
}

func (s *scriptedFaults) LaunchFate() LaunchFate {
	if s.fi < len(s.fates) {
		f := s.fates[s.fi]
		s.fi++
		return f
	}
	return LaunchOK
}

func (s *scriptedFaults) ActivationDelay() simtime.Duration {
	if s.di < len(s.delays) {
		d := s.delays[s.di]
		s.di++
		return d
	}
	return 0
}

func TestLostOrderNeverMaterializes(t *testing.T) {
	wf := fan(4, 100, 0)
	sc := &scriptController{decisions: []Decision{{Launch: 3}}}
	cfg := Config{Cloud: testCloud(), Faults: &scriptedFaults{fates: []LaunchFate{LaunchLost, LaunchOK, LaunchOK}}}
	res, err := Run(wf, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OrdersLost != 1 {
		t.Errorf("OrdersLost = %d, want 1", res.OrdersLost)
	}
	// Bootstrap + the two surviving orders.
	if res.Launches != 3 {
		t.Errorf("launches = %d, want 3", res.Launches)
	}
	// 4 tasks on 3 instances: task0 at 10..110, tasks 1-2 at 20..120,
	// task3 queued behind -> 110..210.
	if !simtime.Equal(res.Makespan, 210) {
		t.Errorf("makespan = %v, want 210", res.Makespan)
	}
}

func TestDuplicatedOrderMaterializesTwice(t *testing.T) {
	wf := fan(4, 100, 0)
	sc := &scriptController{decisions: []Decision{{Launch: 1}}}
	cfg := Config{Cloud: testCloud(), Faults: &scriptedFaults{fates: []LaunchFate{LaunchDuplicated}}}
	res, err := Run(wf, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OrdersDuplicated != 1 {
		t.Errorf("OrdersDuplicated = %d, want 1", res.OrdersDuplicated)
	}
	if res.Launches != 3 || res.PeakPool != 3 {
		t.Errorf("launches = %d peak = %d, want 3 and 3", res.Launches, res.PeakPool)
	}
}

func TestDeadOnArrivalWrittenOffUnbilled(t *testing.T) {
	wf := fan(4, 100, 0)
	base, err := Run(wf, holdController{}, Config{Cloud: testCloud()})
	if err != nil {
		t.Fatal(err)
	}

	sc := &scriptController{decisions: []Decision{{Launch: 1}}}
	cfg := Config{Cloud: testCloud(), Faults: &scriptedFaults{fates: []LaunchFate{LaunchDOA}}}
	var doaEvents int
	cfg.Observer = func(ev Event) {
		if ev.Kind == EvInstanceDOA {
			doaEvents++
			// Ordered at t=10, nominal activation 20, default grace = one
			// interval -> written off at 30.
			if !simtime.Equal(ev.Time, 30) {
				t.Errorf("DOA write-off at %v, want 30", ev.Time)
			}
		}
	}
	res, err := Run(wf, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadOnArrival != 1 || doaEvents != 1 {
		t.Errorf("DeadOnArrival = %d, events = %d, want 1 and 1", res.DeadOnArrival, doaEvents)
	}
	// The DOA launch never ran a task and must not be billed: same cost and
	// makespan as the fault-free single-instance run.
	if res.UnitsCharged != base.UnitsCharged {
		t.Errorf("units = %d, fault-free run paid %d", res.UnitsCharged, base.UnitsCharged)
	}
	if !simtime.Equal(res.Makespan, base.Makespan) {
		t.Errorf("makespan = %v, fault-free %v", res.Makespan, base.Makespan)
	}
	// While pending, the DOA instance held a cap slot.
	if res.PeakPool != 2 {
		t.Errorf("peak pool = %d, want 2", res.PeakPool)
	}
}

func TestDOAControllerReorders(t *testing.T) {
	// A pool-target controller that keeps re-ordering until it holds 2.
	wf := fan(8, 100, 0)
	target := targetController{want: 2}
	cfg := Config{Cloud: testCloud(), Faults: &scriptedFaults{fates: []LaunchFate{LaunchDOA}}}
	res, err := Run(wf, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadOnArrival != 1 {
		t.Fatalf("DeadOnArrival = %d, want 1", res.DeadOnArrival)
	}
	// First order (t=10) is DOA; written off at 30. The controller sees
	// held=2 at t=20 (pending counts), held=1 again at t=30 after the
	// write-off, and re-orders; the replacement activates at 40.
	if res.Launches != 3 {
		t.Errorf("launches = %d, want 3 (bootstrap + DOA + re-order)", res.Launches)
	}
	usable := 0
	for _, s := range res.Pool {
		if s.Usable > usable {
			usable = s.Usable
		}
	}
	if usable != 2 {
		t.Errorf("peak usable = %d, want 2 (re-ordered instance activated)", usable)
	}
}

func TestStragglerDelaysActivation(t *testing.T) {
	wf := fan(2, 100, 0)
	sc := &scriptController{decisions: []Decision{{Launch: 1}}}
	cfg := Config{Cloud: testCloud(), Faults: &scriptedFaults{delays: []simtime.Duration{15}}}
	res, err := Run(wf, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ordered at 10, nominal activation 20, straggles to 35; its task runs
	// 35..135 while the bootstrap instance finishes task0 at 110.
	if !simtime.Equal(res.Makespan, 135) {
		t.Errorf("makespan = %v, want 135", res.Makespan)
	}
	// Billing follows the delayed activation: the straggler is charged from
	// 35 and pays 1 unit for 35..135; the bootstrap instance is held to run
	// end (10..135 = 2 units). Charging from the nominal activation would
	// have billed the straggler 2 units.
	if res.UnitsCharged != 3 {
		t.Errorf("units = %d, want 3", res.UnitsCharged)
	}
}

func TestBootstrapExemptFromStragglers(t *testing.T) {
	wf := fan(1, 30, 0)
	sf := &scriptedFaults{delays: []simtime.Duration{500}}
	res, err := Run(wf, holdController{}, Config{Cloud: testCloud(), Faults: sf})
	if err != nil {
		t.Fatal(err)
	}
	if sf.di != 0 {
		t.Errorf("bootstrap launch consulted the straggler injector %d times", sf.di)
	}
	if !simtime.Equal(res.Makespan, 40) {
		t.Errorf("makespan = %v, want 40 (undelayed bootstrap)", res.Makespan)
	}
}

// targetController launches toward a fixed pool size.
type targetController struct{ want int }

func (c targetController) Name() string { return "target" }
func (c targetController) Plan(snap *monitor.Snapshot) Decision {
	held := len(snap.Instances)
	if held < c.want {
		return Decision{Launch: c.want - held}
	}
	return Decision{}
}
