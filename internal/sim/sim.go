// Package sim executes a workflow DAG on a simulated elastic cloud site.
//
// It plays the role of Pegasus WMS/HTCondor plus ExoGENI in the paper: it
// dispatches ready tasks FIFO onto instance slots (with the first-five-per-
// stage priority patch, §III-C), tracks task lifecycles, publishes
// monitoring snapshots, and applies a Controller's pool decisions with the
// cloud lag. The controller — WIRE or a baseline — is a plug-in; the
// simulator is the shared substrate every policy is measured on (§IV-C3).
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// Controller plans the worker pool once per MAPE interval.
type Controller interface {
	// Name identifies the policy in reports.
	Name() string
	// Plan inspects the snapshot and returns pool-change orders that the
	// simulator applies with the cloud's lag semantics.
	Plan(snap *monitor.Snapshot) Decision
}

// ReleaseOrder asks for one instance to be released.
type ReleaseOrder struct {
	Instance cloud.InstanceID `json:"instance"`
	// AtBoundary delays the termination to the instance's next charging
	// boundary (WIRE's no-recharge release, §III-D); otherwise the
	// release is immediate.
	AtBoundary bool `json:"at_boundary,omitempty"`
}

// Decision is a controller's plan for the next interval. The json tags
// define the stable wire format wire-serve returns from its plan endpoint.
type Decision struct {
	// Launch is the number of new instances to request now; they become
	// usable one lag later, i.e. at the start of the next interval.
	Launch int `json:"launch"`
	// Releases lists instances to drain and terminate.
	Releases []ReleaseOrder `json:"releases,omitempty"`
}

// Config parameterizes a run.
type Config struct {
	Cloud cloud.Config

	// Interval is the MAPE period; zero means use the cloud lag time
	// (§III-A sets them equal).
	Interval simtime.Duration

	// InitialInstances is the pool size requested at t=0 (default 1).
	InitialInstances int

	// Seed drives the interference sampler; runs are deterministic in it.
	Seed int64

	// Interference, when set, multiplies each task attempt's occupancy by
	// a fresh draw — the across-run/across-instance variability of §II-B.
	Interference dist.Dist

	// InstanceSpeed, when set, samples one speed factor per instance at
	// launch; every attempt on that instance divides its occupancy by
	// the factor. This models §II-B's second variability source:
	// instances of nominally one type still differ in per-core memory
	// and network bandwidth. Draws should have mean ~1.
	InstanceSpeed dist.Dist

	// TransferCongestion scales each attempt's data-transfer time by
	// (1 + TransferCongestion·(usable-1)) where usable is the pool size
	// at dispatch — a crude shared-network contention model (§III-B1
	// notes transfer times vary with the number of instances). Zero
	// disables it.
	TransferCongestion float64

	// Order optionally permutes FIFO tie-breaking among simultaneously
	// ready tasks (the Figure 4 task orders). Entry i is the rank of task
	// i; unlisted tasks keep their ID as rank.
	Order map[dag.TaskID]int

	// DisableFirstFive turns off the per-stage priority boost.
	DisableFirstFive bool

	// MaxSimTime aborts runs that exceed this simulated horizon
	// (default 1e8 s) — a guard against controller deadlock.
	MaxSimTime simtime.Duration

	// MTBF, when positive, injects instance failures: each instance
	// draws an exponentially distributed lifetime with this mean at
	// launch and crashes when it expires — billing stops, its running
	// tasks are resubmitted, and the controller simply observes a
	// smaller pool at the next snapshot. Zero disables failures.
	MTBF simtime.Duration

	// Faults, when set, perturbs cloud-side order handling: the injector
	// is consulted once per controller-ordered launch (lost, duplicated,
	// or dead-on-arrival orders) and once per materialized launch for a
	// straggler activation delay. The bootstrap pool of InitialInstances
	// is exempt — it models the operator's initial provisioning, not an
	// elastic order. Injectors carry their own seeded randomness so the
	// MTBF/interference stream of Seed is untouched.
	Faults FaultInjector

	// DOAGrace is how long after the nominal activation time a pending
	// order is given before being written off as dead on arrival and
	// canceled (default: the cloud lag time, i.e. one extra interval).
	// The controller observes the shrunken pool at the next snapshot and
	// re-orders.
	DOAGrace simtime.Duration

	// Observer, when set, receives every lifecycle event of the run
	// (task starts/completions/kills, instance lifecycle, decisions) on
	// the simulation goroutine. Used by the trace tooling.
	Observer func(Event)
}

// LaunchFate classifies what the simulated cloud does with one launch
// order (§II-B: orders take a lag to act and do not always act faithfully).
type LaunchFate int

// Launch-order fates, consulted per controller-ordered launch.
const (
	// LaunchOK materializes the order normally.
	LaunchOK LaunchFate = iota
	// LaunchLost drops the order silently; no instance is ever created.
	LaunchLost
	// LaunchDuplicated materializes the order twice (at-least-once
	// provider semantics); the second launch still respects the site cap.
	LaunchDuplicated
	// LaunchDOA creates the instance but it never activates; after
	// DOAGrace the simulator writes it off and cancels it unbilled.
	LaunchDOA
)

// FaultInjector lets a fault-injection harness (internal/chaos) perturb the
// cloud side of a run. Implementations are consulted on the simulation
// goroutine only and must be deterministic for reproducible runs.
type FaultInjector interface {
	// LaunchFate is consulted once per controller-ordered launch.
	LaunchFate() LaunchFate
	// ActivationDelay is consulted once per materialized launch and
	// returns an extra straggler delay added to the nominal lag
	// (0 = activates on time). Not consulted for dead-on-arrival
	// launches, which never activate.
	ActivationDelay() simtime.Duration
}

// EventKind labels an observer notification.
type EventKind int

// Observer event kinds.
const (
	EvTaskStart EventKind = iota
	EvTaskComplete
	EvTaskKilled
	EvInstanceLaunch
	EvInstanceActive
	EvInstanceTerminated
	EvInstanceFailed
	EvDecision
	// Fault-injection events (Config.Faults).
	EvOrderLost
	EvOrderDuplicated
	EvInstanceDOA
	// Self-healing events (live execution plane).
	EvTaskQuarantined
	EvTaskSpeculated
	EvAgentBlacklisted
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvTaskStart:
		return "task-start"
	case EvTaskComplete:
		return "task-complete"
	case EvTaskKilled:
		return "task-killed"
	case EvInstanceLaunch:
		return "instance-launch"
	case EvInstanceActive:
		return "instance-active"
	case EvInstanceTerminated:
		return "instance-terminated"
	case EvInstanceFailed:
		return "instance-failed"
	case EvDecision:
		return "decision"
	case EvOrderLost:
		return "order-lost"
	case EvOrderDuplicated:
		return "order-duplicated"
	case EvInstanceDOA:
		return "instance-doa"
	case EvTaskQuarantined:
		return "task-quarantined"
	case EvTaskSpeculated:
		return "task-speculated"
	case EvAgentBlacklisted:
		return "agent-blacklisted"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one observer notification. Task and Instance are -1 when not
// applicable.
type Event struct {
	Time     simtime.Time
	Kind     EventKind
	Task     dag.TaskID
	Instance cloud.InstanceID
	// Launch and Released describe EvDecision events.
	Launch   int
	Released int
}

func (c Config) interval() simtime.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	if c.Cloud.LagTime > 0 {
		return c.Cloud.LagTime
	}
	return 1
}

// TaskRun records the successful execution of one task.
type TaskRun struct {
	Task             dag.TaskID
	Stage            dag.StageID
	Instance         cloud.InstanceID
	ReadyAt          simtime.Time
	Start            simtime.Time
	End              simtime.Time
	ObservedExec     simtime.Duration
	ObservedTransfer simtime.Duration
	Restarts         int // times this task was killed before this run
}

// PoolSample is one point of the pool-size timeline.
type PoolSample struct {
	Time   simtime.Time
	Held   int
	Usable int
}

// Result summarizes a completed run.
type Result struct {
	Workflow string
	Policy   string

	Makespan       simtime.Duration
	UnitsCharged   int
	ChargedSeconds float64
	Utilization    float64

	PeakPool  int
	Launches  int
	Restarts  int
	Failures  int
	Decisions int

	// Fault-injection outcomes (zero without Config.Faults; Failures
	// above counts MTBF crashes of active instances).
	OrdersLost       int // launch orders dropped before reaching the site
	OrdersDuplicated int // launch orders materialized twice
	DeadOnArrival    int // launches that never activated and were written off

	// ControllerWall is the real CPU-wall time spent inside Plan calls:
	// the paper's controller-overhead metric (§IV-F).
	ControllerWall time.Duration

	TaskRuns []TaskRun
	Pool     []PoolSample
}

// run is the mutable state of one simulation.
type run struct {
	wf   *dag.Workflow
	ctrl Controller
	cfg  Config

	eng   *event.Engine
	site  *cloud.Site
	queue *sched.Queue
	rng   *rand.Rand

	tasks     []taskState
	instances map[cloud.InstanceID]*instState

	completed int
	lastTick  simtime.Time
	done      bool
	doneAt    simtime.Time
	err       error

	res      *Result
	nextTick *event.Event
}

type taskState struct {
	state    monitor.TaskState
	waiting  int // unmet dependencies
	readyAt  simtime.Time
	priority bool

	// Fields of the current/last attempt.
	startedAt      simtime.Time
	inst           *instState
	slot           int
	attemptDur     simtime.Duration // sampled total occupancy
	actualTransfer simtime.Duration
	actualExec     simtime.Duration
	completeEv     *event.Event

	restarts    int
	completedAt simtime.Time
}

type instState struct {
	inst     *cloud.Instance
	running  map[dag.TaskID]struct{}
	draining bool
	termEv   *event.Event
	speed    float64
}

func (is *instState) freeSlots() int { return is.inst.Slots - len(is.running) }

// Run executes the workflow to completion under the controller and returns
// the run summary. It returns an error for invalid configuration, controller
// protocol violations, or a run exceeding the simulation horizon.
func Run(wf *dag.Workflow, ctrl Controller, cfg Config) (*Result, error) {
	return runWithBudget(wf, ctrl, cfg, 50_000_000)
}

func runWithBudget(wf *dag.Workflow, ctrl Controller, cfg Config, maxEvents uint64) (*Result, error) {
	if err := cfg.Cloud.Validate(); err != nil {
		return nil, err
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialInstances <= 0 {
		cfg.InitialInstances = 1
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 1e8
	}

	orderOf := func(t dag.TaskID) int { return int(t) }
	if cfg.Order != nil {
		order := cfg.Order
		orderOf = func(t dag.TaskID) int {
			if r, ok := order[t]; ok {
				return r
			}
			return int(t)
		}
	}
	boost := sched.PriorityTasksPerStage
	if cfg.DisableFirstFive {
		boost = 0
	}

	site, err := cloud.NewSite(cfg.Cloud)
	if err != nil {
		return nil, err
	}
	r := &run{
		wf:        wf,
		ctrl:      ctrl,
		cfg:       cfg,
		eng:       event.New(),
		site:      site,
		queue:     sched.NewQueue(sched.WithOrder(orderOf), sched.WithBoost(boost)),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tasks:     make([]taskState, wf.NumTasks()),
		instances: make(map[cloud.InstanceID]*instState),
		res: &Result{
			Workflow: wf.Name,
			Policy:   ctrl.Name(),
			TaskRuns: make([]TaskRun, 0, wf.NumTasks()),
		},
	}
	r.eng.MaxEvents = maxEvents

	// Initial dependency counts and root readiness.
	for _, t := range wf.Tasks {
		r.tasks[t.ID].waiting = len(t.Deps)
		r.tasks[t.ID].state = monitor.Blocked
	}
	for _, id := range wf.Roots() {
		r.markReady(id, 0)
	}

	// Initial pool.
	for i := 0; i < cfg.InitialInstances; i++ {
		if _, err := r.launch(0); err != nil {
			return nil, fmt.Errorf("sim: initial pool: %w", err)
		}
	}
	r.samplePool(0)

	// First control tick one interval in; pool changes it orders become
	// effective at the start of the following interval (§III-A).
	iv := cfg.interval()
	r.nextTick = r.eng.At(iv, event.PriControl, "control", r.controlTick)

	if err := r.eng.RunUntil(cfg.MaxSimTime); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	if !r.done {
		return nil, fmt.Errorf("sim: %s/%s exceeded horizon %v with %d/%d tasks done",
			wf.Name, ctrl.Name(), cfg.MaxSimTime, r.completed, wf.NumTasks())
	}

	r.res.Makespan = r.doneAt
	r.res.UnitsCharged = site.TotalUnitsCharged(r.doneAt)
	r.res.ChargedSeconds = site.TotalChargedSeconds(r.doneAt)
	r.res.Utilization = site.Utilization(r.doneAt)
	return r.res, nil
}

func (r *run) emit(ev Event) {
	if r.cfg.Observer != nil {
		r.cfg.Observer(ev)
	}
}

func (r *run) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	// Drain: cancel the tick chain so the engine stops.
	if r.nextTick != nil {
		r.eng.Cancel(r.nextTick)
	}
}

// launch materializes a bootstrap launch, exempt from fault injection.
func (r *run) launch(now simtime.Time) (*instState, error) {
	return r.launchFated(now, false, false)
}

// launchFated materializes one launch. A dead-on-arrival launch holds a
// pending slot, never activates, and is written off (canceled unbilled)
// DOAGrace after its nominal activation time. Only elastic (controller-
// ordered) launches consult the straggler injector.
func (r *run) launchFated(now simtime.Time, doa, elastic bool) (*instState, error) {
	in, err := r.site.Launch(now)
	if err != nil {
		return nil, err
	}
	if elastic && !doa && r.cfg.Faults != nil {
		if extra := r.cfg.Faults.ActivationDelay(); extra > 0 {
			if err := r.site.Postpone(in, in.ActiveAt+extra); err != nil {
				return nil, err
			}
		}
	}
	r.emit(Event{Time: now, Kind: EvInstanceLaunch, Task: -1, Instance: in.ID})
	is := &instState{inst: in, running: make(map[dag.TaskID]struct{}), speed: 1}
	if r.cfg.InstanceSpeed != nil {
		if s := r.cfg.InstanceSpeed.Sample(r.rng); s > 0.01 {
			is.speed = s
		} else {
			is.speed = 0.01
		}
	}
	r.instances[in.ID] = is
	r.res.Launches++
	if held := r.site.Held(); held > r.res.PeakPool {
		r.res.PeakPool = held
	}
	if doa {
		grace := r.cfg.DOAGrace
		if grace <= 0 {
			grace = r.cfg.interval()
		}
		r.eng.At(in.ActiveAt+grace, event.PriInstance, "doa-writeoff", func(_ *event.Engine, t simtime.Time) {
			if is.inst.State != cloud.Pending {
				return // run finished first; finish() already canceled it
			}
			r.res.DeadOnArrival++
			r.emit(Event{Time: t, Kind: EvInstanceDOA, Task: -1, Instance: is.inst.ID})
			if err := r.site.Terminate(is.inst, t); err != nil {
				r.fail(err)
				return
			}
			r.samplePool(t)
		})
		return is, nil
	}
	r.eng.At(in.ActiveAt, event.PriInstance, "activate", func(_ *event.Engine, t simtime.Time) {
		if is.inst.State != cloud.Pending {
			return // canceled while pending
		}
		if err := r.site.Activate(is.inst, t); err != nil {
			r.fail(err)
			return
		}
		r.emit(Event{Time: t, Kind: EvInstanceActive, Task: -1, Instance: is.inst.ID})
		r.dispatch(t)
	})
	if r.cfg.MTBF > 0 {
		// Draw the lifetime now so the rng consumption order stays
		// deterministic regardless of later event interleavings.
		life := r.rng.ExpFloat64() * r.cfg.MTBF
		r.eng.At(in.ActiveAt+life, event.PriTerminate, "failure", func(_ *event.Engine, t simtime.Time) {
			if is.inst.State != cloud.Active {
				return // already gone
			}
			r.res.Failures++
			r.emit(Event{Time: t, Kind: EvInstanceFailed, Task: -1, Instance: is.inst.ID})
			r.terminate(is, t)
		})
	}
	return is, nil
}

func (r *run) markReady(id dag.TaskID, now simtime.Time) {
	ts := &r.tasks[id]
	ts.state = monitor.Ready
	ts.readyAt = now
	t := r.wf.Task(id)
	r.queue.Push(id, t.Stage, now)
}

// dispatch assigns ready tasks to free slots of usable, non-draining
// instances, lowest instance ID first.
func (r *run) dispatch(now simtime.Time) {
	if r.done || r.err != nil {
		return
	}
	for r.queue.Len() > 0 {
		is := r.pickInstance(now)
		if is == nil {
			return
		}
		it, _ := r.queue.Pop()
		r.start(it.Task, is, now, it.Priority)
	}
}

func (r *run) pickInstance(now simtime.Time) *instState {
	var best *instState
	for _, in := range r.site.Instances() {
		is := r.instances[in.ID]
		if is.draining || in.State != cloud.Active || !in.UsableAt(now) {
			continue
		}
		if is.freeSlots() <= 0 {
			continue
		}
		if best == nil || in.ID < best.inst.ID {
			best = is
		}
	}
	return best
}

func (r *run) start(id dag.TaskID, is *instState, now simtime.Time, priority bool) {
	ts := &r.tasks[id]
	t := r.wf.Task(id)

	factor := 1.0
	if r.cfg.Interference != nil {
		factor = r.cfg.Interference.Sample(r.rng)
		if factor <= 0 {
			factor = 0.01
		}
	}
	factor /= is.speed
	congestion := 1.0
	if r.cfg.TransferCongestion > 0 {
		if usable := len(r.site.UsableInstances(now)); usable > 1 {
			congestion += r.cfg.TransferCongestion * float64(usable-1)
		}
	}
	ts.state = monitor.Running
	ts.priority = priority
	ts.startedAt = now
	ts.inst = is
	ts.actualTransfer = t.TransferTime * factor * congestion
	ts.actualExec = t.ExecTime * factor
	ts.attemptDur = ts.actualTransfer + ts.actualExec
	is.running[id] = struct{}{}

	r.emit(Event{Time: now, Kind: EvTaskStart, Task: id, Instance: is.inst.ID})

	ts.completeEv = r.eng.At(now+ts.attemptDur, event.PriTask, "complete", func(_ *event.Engine, tm simtime.Time) {
		r.complete(id, tm)
	})
}

func (r *run) complete(id dag.TaskID, now simtime.Time) {
	ts := &r.tasks[id]
	is := ts.inst
	ts.state = monitor.Completed
	ts.completedAt = now
	delete(is.running, id)
	is.inst.BusySlotSeconds += ts.attemptDur
	r.completed++
	r.emit(Event{Time: now, Kind: EvTaskComplete, Task: id, Instance: is.inst.ID})

	t := r.wf.Task(id)
	r.res.TaskRuns = append(r.res.TaskRuns, TaskRun{
		Task:             id,
		Stage:            t.Stage,
		Instance:         is.inst.ID,
		ReadyAt:          ts.readyAt,
		Start:            ts.startedAt,
		End:              now,
		ObservedExec:     ts.actualExec,
		ObservedTransfer: ts.actualTransfer,
		Restarts:         ts.restarts,
	})

	for _, s := range t.Succs {
		ss := &r.tasks[s]
		ss.waiting--
		if ss.waiting == 0 {
			r.markReady(s, now)
		}
	}

	if r.completed == r.wf.NumTasks() {
		r.finish(now)
		return
	}
	r.dispatch(now)
}

func (r *run) finish(now simtime.Time) {
	r.done = true
	r.doneAt = now
	if r.nextTick != nil {
		r.eng.Cancel(r.nextTick)
	}
	for _, in := range r.site.Instances() {
		is := r.instances[in.ID]
		if is.termEv != nil {
			r.eng.Cancel(is.termEv)
		}
		if in.State != cloud.Terminated {
			if err := r.site.Terminate(in, now); err != nil {
				r.fail(err)
			}
			r.emit(Event{Time: now, Kind: EvInstanceTerminated, Task: -1, Instance: in.ID})
		}
	}
	r.samplePool(now)
}

// terminate kills an instance, requeueing its running tasks.
func (r *run) terminate(is *instState, now simtime.Time) {
	if is.inst.State == cloud.Terminated {
		return
	}
	for id := range is.running {
		ts := &r.tasks[id]
		r.eng.Cancel(ts.completeEv)
		is.inst.BusySlotSeconds += now - ts.startedAt
		ts.restarts++
		r.res.Restarts++
		ts.state = monitor.Ready
		ts.readyAt = now
		ts.inst = nil
		t := r.wf.Task(id)
		r.queue.Requeue(id, t.Stage, now, ts.priority)
		r.emit(Event{Time: now, Kind: EvTaskKilled, Task: id, Instance: is.inst.ID})
	}
	is.running = make(map[dag.TaskID]struct{})
	if err := r.site.Terminate(is.inst, now); err != nil {
		r.fail(err)
		return
	}
	r.emit(Event{Time: now, Kind: EvInstanceTerminated, Task: -1, Instance: is.inst.ID})
	r.samplePool(now)
	r.dispatch(now)
}

func (r *run) samplePool(now simtime.Time) {
	s := PoolSample{
		Time:   now,
		Held:   r.site.Held(),
		Usable: len(r.site.UsableInstances(now)),
	}
	// Record only changes (plus the first sample) — long runs tick many
	// thousands of times with a steady pool.
	if n := len(r.res.Pool); n > 0 {
		last := r.res.Pool[n-1]
		if last.Held == s.Held && last.Usable == s.Usable {
			return
		}
	}
	r.res.Pool = append(r.res.Pool, s)
}

func (r *run) controlTick(_ *event.Engine, now simtime.Time) {
	if r.done || r.err != nil {
		return
	}
	iv := r.cfg.interval()
	r.nextTick = r.eng.At(now+iv, event.PriControl, "control", r.controlTick)

	snap := r.Snapshot(now)
	r.lastTick = now

	wallStart := time.Now()
	dec := r.ctrl.Plan(snap)
	r.res.ControllerWall += time.Since(wallStart)
	r.res.Decisions++
	r.emit(Event{Time: now, Kind: EvDecision, Task: -1, Instance: -1, Launch: dec.Launch, Released: len(dec.Releases)})

	if err := r.apply(dec, now); err != nil {
		r.fail(err)
	}
}

func (r *run) apply(dec Decision, now simtime.Time) error {
	if dec.Launch < 0 {
		return fmt.Errorf("sim: controller %s requested negative launch %d", r.ctrl.Name(), dec.Launch)
	}
	for i := 0; i < dec.Launch; i++ {
		fate := LaunchOK
		if r.cfg.Faults != nil {
			fate = r.cfg.Faults.LaunchFate()
		}
		switch fate {
		case LaunchLost:
			r.res.OrdersLost++
			r.emit(Event{Time: now, Kind: EvOrderLost, Task: -1, Instance: -1})
			continue
		case LaunchDuplicated:
			r.res.OrdersDuplicated++
			r.emit(Event{Time: now, Kind: EvOrderDuplicated, Task: -1, Instance: -1})
			// The duplicate is best-effort at the cap, like the order.
			for n := 0; n < 2; n++ {
				if _, err := r.launchFated(now, false, true); err != nil {
					if err == cloud.ErrSiteFull {
						break
					}
					return err
				}
			}
			continue
		}
		if _, err := r.launchFated(now, fate == LaunchDOA, true); err != nil {
			if err == cloud.ErrSiteFull {
				break // best effort at the cap
			}
			return err
		}
	}
	for _, ro := range dec.Releases {
		is, ok := r.instances[ro.Instance]
		if !ok {
			return fmt.Errorf("sim: controller %s released unknown instance %d", r.ctrl.Name(), ro.Instance)
		}
		if is.inst.State == cloud.Terminated {
			return fmt.Errorf("sim: controller %s released terminated instance %d", r.ctrl.Name(), ro.Instance)
		}
		if is.draining {
			continue
		}
		is.draining = true
		at := now
		if ro.AtBoundary && is.inst.State == cloud.Active {
			at = is.inst.NextChargeBoundary(now)
		}
		if simtime.AtOrBefore(at, now) {
			r.terminate(is, now)
			continue
		}
		is.termEv = r.eng.At(at, event.PriTerminate, "terminate", func(_ *event.Engine, t simtime.Time) {
			r.terminate(is, t)
		})
	}
	r.samplePool(now)
	// Newly freed capacity (immediate releases free nothing, but launches
	// don't either until active); still, draining changes assignment
	// eligibility only, so no dispatch needed here.
	return nil
}

// Snapshot builds the monitoring view at time now. Exported for controller
// unit tests; the simulator calls it on every control tick.
func (r *run) Snapshot(now simtime.Time) *monitor.Snapshot {
	snap := &monitor.Snapshot{
		Now:              now,
		Interval:         r.cfg.interval(),
		ChargingUnit:     r.cfg.Cloud.ChargingUnit,
		LagTime:          r.cfg.Cloud.LagTime,
		SlotsPerInstance: r.cfg.Cloud.SlotsPerInstance,
		MaxInstances:     r.cfg.Cloud.MaxInstances,
		Workflow:         r.wf,
		Tasks:            make([]monitor.TaskRecord, r.wf.NumTasks()),
	}
	for _, t := range r.wf.Tasks {
		ts := &r.tasks[t.ID]
		rec := monitor.TaskRecord{
			ID:        t.ID,
			Stage:     t.Stage,
			State:     ts.state,
			InputSize: t.InputSize,
			ReadyAt:   ts.readyAt,
		}
		switch ts.state {
		case monitor.Running:
			rec.StartedAt = ts.startedAt
			rec.Instance = ts.inst.inst.ID
			rec.Elapsed = now - ts.startedAt
			if simtime.AtOrAfter(now, ts.startedAt+ts.actualTransfer) {
				rec.TransferObserved = true
				rec.TransferTime = ts.actualTransfer
			}
		case monitor.Completed:
			rec.StartedAt = ts.startedAt
			if ts.inst != nil {
				rec.Instance = ts.inst.inst.ID
			}
			rec.CompletedAt = ts.completedAt
			rec.ExecTime = ts.actualExec
			rec.TransferObserved = true
			rec.TransferTime = ts.actualTransfer
		}
		snap.Tasks[t.ID] = rec

		// Transfers whose completion fell inside the last interval.
		if ts.state == monitor.Running || ts.state == monitor.Completed {
			obsAt := ts.startedAt + ts.actualTransfer
			if simtime.After(obsAt, r.lastTick) && simtime.AtOrBefore(obsAt, now) {
				snap.RecentTransfers = append(snap.RecentTransfers, ts.actualTransfer)
			}
		}
	}
	for _, in := range r.site.Instances() {
		if in.State == cloud.Terminated {
			continue
		}
		is := r.instances[in.ID]
		rec := monitor.InstanceRecord{
			ID:               in.ID,
			State:            in.State,
			Slots:            in.Slots,
			RequestedAt:      in.RequestedAt,
			ActiveAt:         in.ActiveAt,
			TimeToNextCharge: in.TimeToNextCharge(now),
			Draining:         is.draining,
		}
		for id := range is.running {
			rec.Running = append(rec.Running, id)
		}
		sortTaskIDs(rec.Running)
		snap.Instances = append(snap.Instances, rec)
	}
	return snap
}

func sortTaskIDs(ids []dag.TaskID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
