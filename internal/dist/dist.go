// Package dist provides seeded random distributions used by the workload
// generators and the interference model.
//
// Every distribution draws from an explicit *rand.Rand so that workloads are
// reproducible from a seed; nothing in this package touches the global rand
// state. The catalogue covers the shapes the paper leans on: skewed
// intra-stage task times (lognormal, Pareto, Zipf — §II-A cites Zipfian load
// skew) and memoryless data transfers (exponential, §III-B1).
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist draws positive-valued samples.
type Dist interface {
	// Sample returns one draw using the supplied source.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution's analytic mean.
	Mean() float64
	// String describes the distribution for run reports.
	String() string
}

// Constant always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.V) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Exponential draws from an exponential distribution with the given mean
// (memoryless; the paper's model for data-transfer times).
type Exponential struct{ MeanV float64 }

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() * e.MeanV }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanV }

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%g)", e.MeanV) }

// Normal draws from N(Mu, Sigma²) truncated at Min (resampling would bias the
// mean less, but clamping keeps sampling O(1) and the truncation mass tiny
// for the parameters we use).
type Normal struct {
	Mu, Sigma float64
	Min       float64
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	v := n.Mu + rng.NormFloat64()*n.Sigma
	if v < n.Min {
		v = n.Min
	}
	return v
}

// Mean implements Dist. The reported mean ignores truncation.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(mu=%g,sigma=%g)", n.Mu, n.Sigma) }

// Lognormal draws exp(N(mu, sigma²)). Construct with NewLognormalFromMean to
// parameterize by the arithmetic mean, which is what Table I reports.
type Lognormal struct{ MuLog, SigmaLog float64 }

// NewLognormalFromMean returns a lognormal with the given arithmetic mean and
// log-space standard deviation sigmaLog (the skew knob: ~0.25 is mild,
// ~1 is heavy-tailed).
func NewLognormalFromMean(mean, sigmaLog float64) Lognormal {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: lognormal mean must be positive, got %g", mean))
	}
	return Lognormal{MuLog: math.Log(mean) - sigmaLog*sigmaLog/2, SigmaLog: sigmaLog}
}

// Sample implements Dist.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.MuLog + rng.NormFloat64()*l.SigmaLog)
}

// Mean implements Dist.
func (l Lognormal) Mean() float64 { return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2) }

func (l Lognormal) String() string {
	return fmt.Sprintf("lognormal(mean=%g,sigmaLog=%g)", l.Mean(), l.SigmaLog)
}

// Pareto draws from a Pareto distribution with scale Xm and shape Alpha
// (heavy-tailed straggler model). Alpha must exceed 1 for a finite mean.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// Zipf draws values Scale*rank where rank follows a Zipf law over
// {1..N} with exponent S>1. It models the discrete skewed task-time
// populations cited in §II-A.
type Zipf struct {
	N     int
	S     float64
	Scale float64
}

// Sample implements Dist.
func (z Zipf) Sample(rng *rand.Rand) float64 {
	// Inverse-CDF over the normalized generalized harmonic weights.
	if z.N <= 0 {
		panic("dist: Zipf.N must be positive")
	}
	total := 0.0
	for k := 1; k <= z.N; k++ {
		total += math.Pow(float64(k), -z.S)
	}
	target := rng.Float64() * total
	acc := 0.0
	for k := 1; k <= z.N; k++ {
		acc += math.Pow(float64(k), -z.S)
		if acc >= target {
			return z.Scale * float64(k)
		}
	}
	return z.Scale * float64(z.N)
}

// Mean implements Dist.
func (z Zipf) Mean() float64 {
	total, weighted := 0.0, 0.0
	for k := 1; k <= z.N; k++ {
		w := math.Pow(float64(k), -z.S)
		total += w
		weighted += w * float64(k)
	}
	return z.Scale * weighted / total
}

func (z Zipf) String() string { return fmt.Sprintf("zipf(n=%d,s=%g,scale=%g)", z.N, z.S, z.Scale) }

// Empirical draws uniformly from a fixed sample set, which lets recorded
// traces be replayed through the same generator interface.
type Empirical struct{ Values []float64 }

// Sample implements Dist.
func (e Empirical) Sample(rng *rand.Rand) float64 {
	if len(e.Values) == 0 {
		panic("dist: Empirical with no values")
	}
	return e.Values[rng.Intn(len(e.Values))]
}

// Mean implements Dist.
func (e Empirical) Mean() float64 {
	if len(e.Values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range e.Values {
		s += v
	}
	return s / float64(len(e.Values))
}

func (e Empirical) String() string { return fmt.Sprintf("empirical(n=%d)", len(e.Values)) }

// Scaled wraps a distribution and multiplies every draw by Factor. The
// workload generators use it to calibrate stage means against the aggregate
// execution times published in Table I.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.D.Sample(rng) * s.Factor }

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.D.Mean() * s.Factor }

func (s Scaled) String() string { return fmt.Sprintf("%v*%g", s.D, s.Factor) }

// SampleN draws n samples.
func SampleN(d Dist, rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// SampleSorted draws n samples and sorts them ascending; useful in tests
// that assert on quantiles.
func SampleSorted(d Dist, rng *rand.Rand, n int) []float64 {
	out := SampleN(d, rng, n)
	sort.Float64s(out)
	return out
}
