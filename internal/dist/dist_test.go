package dist

import (
	"math"
	"math/rand"
	"testing"
)

const sampleCount = 20000

func meanOf(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func checkEmpiricalMean(t *testing.T, d Dist, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	got := meanOf(SampleN(d, rng, sampleCount))
	want := d.Mean()
	if math.Abs(got-want) > tol*math.Max(1, want) {
		t.Errorf("%v: empirical mean %.4f, analytic %.4f", d, got, want)
	}
}

func TestConstant(t *testing.T) {
	d := Constant{V: 7}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if d.Sample(rng) != 7 {
			t.Fatal("constant varied")
		}
	}
	checkEmpiricalMean(t, d, 0)
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 10}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 2 || v >= 10 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
	checkEmpiricalMean(t, d, 0.05)
}

func TestExponential(t *testing.T) {
	checkEmpiricalMean(t, Exponential{MeanV: 5}, 0.05)
}

func TestNormalTruncation(t *testing.T) {
	d := Normal{Mu: 10, Sigma: 3, Min: 0.5}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		if v := d.Sample(rng); v < 0.5 {
			t.Fatalf("normal sample %v below Min", v)
		}
	}
	checkEmpiricalMean(t, d, 0.05)
}

func TestLognormalFromMean(t *testing.T) {
	for _, mean := range []float64{0.5, 5, 50} {
		d := NewLognormalFromMean(mean, 0.6)
		if math.Abs(d.Mean()-mean) > 1e-9 {
			t.Fatalf("analytic mean %v, want %v", d.Mean(), mean)
		}
		checkEmpiricalMean(t, d, 0.06)
	}
}

func TestLognormalPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLognormalFromMean(0, 1)
}

func TestLognormalPositive(t *testing.T) {
	d := NewLognormalFromMean(3, 1.2)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		if v := d.Sample(rng); v <= 0 {
			t.Fatalf("lognormal produced non-positive %v", v)
		}
	}
}

func TestPareto(t *testing.T) {
	d := Pareto{Xm: 2, Alpha: 3}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		if v := d.Sample(rng); v < 2 {
			t.Fatalf("pareto sample %v below xm", v)
		}
	}
	checkEmpiricalMean(t, d, 0.1)
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1}.Mean(), 1) {
		t.Fatal("alpha<=1 should have infinite mean")
	}
}

func TestZipf(t *testing.T) {
	d := Zipf{N: 10, S: 1.5, Scale: 2}
	rng := rand.New(rand.NewSource(6))
	counts := map[float64]int{}
	for i := 0; i < sampleCount; i++ {
		v := d.Sample(rng)
		if v < 2 || v > 20 {
			t.Fatalf("zipf sample %v out of range", v)
		}
		counts[v]++
	}
	// Rank 1 must dominate rank 2 under a Zipf law.
	if counts[2] <= counts[4] {
		t.Fatalf("zipf not skewed: rank1=%d rank2=%d", counts[2], counts[4])
	}
	checkEmpiricalMean(t, d, 0.05)
}

func TestEmpirical(t *testing.T) {
	d := Empirical{Values: []float64{1, 2, 3}}
	rng := rand.New(rand.NewSource(7))
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		seen[d.Sample(rng)] = true
	}
	for _, v := range d.Values {
		if !seen[v] {
			t.Fatalf("value %v never drawn", v)
		}
	}
	if d.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", d.Mean())
	}
}

func TestScaled(t *testing.T) {
	d := Scaled{D: Constant{V: 3}, Factor: 2.5}
	rng := rand.New(rand.NewSource(8))
	if d.Sample(rng) != 7.5 {
		t.Fatal("scale not applied")
	}
	if d.Mean() != 7.5 {
		t.Fatal("mean not scaled")
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	d := NewLognormalFromMean(10, 0.8)
	a := SampleN(d, rand.New(rand.NewSource(99)), 50)
	b := SampleN(d, rand.New(rand.NewSource(99)), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSampleSorted(t *testing.T) {
	d := Uniform{Lo: 0, Hi: 1}
	vals := SampleSorted(d, rand.New(rand.NewSource(10)), 100)
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestStringDescriptions(t *testing.T) {
	for _, d := range []Dist{
		Constant{V: 1}, Uniform{Lo: 0, Hi: 1}, Exponential{MeanV: 2},
		Normal{Mu: 1, Sigma: 2}, NewLognormalFromMean(3, 0.5),
		Pareto{Xm: 1, Alpha: 2}, Zipf{N: 3, S: 1.1, Scale: 1},
		Empirical{Values: []float64{1}}, Scaled{D: Constant{V: 2}, Factor: 3},
	} {
		if d.String() == "" {
			t.Fatalf("%T has empty description", d)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zipf{N: 0, S: 1.1, Scale: 1}.Sample(rand.New(rand.NewSource(1)))
}

func TestEmpiricalPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Empirical{}.Sample(rand.New(rand.NewSource(1)))
}

func TestEmpiricalEmptyMean(t *testing.T) {
	if (Empirical{}).Mean() != 0 {
		t.Fatal("empty empirical mean should be 0")
	}
}
