package lookahead

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/simtime"
)

// epochEst is a deterministic EpochEstimator whose per-task answers depend
// on the stage's epochs, so a stale memoized estimate (missed invalidation)
// shows up as a projection mismatch rather than staying silently identical.
type epochEst struct {
	agg   []uint64
	model []uint64
}

func (e *epochEst) EstimateOccupancy(snap *monitor.Snapshot, id dag.TaskID) (float64, predict.Policy) {
	st := snap.Workflow.Tasks[id].Stage
	v := float64(id%7+1) + 0.5*float64(e.agg[st]%5) + 0.25*float64(e.model[st]%3)
	pol := predict.PolicyGroupMedian
	if e.model[st]%2 == 1 {
		pol = predict.PolicyOGD
	}
	return v, pol
}

func (e *epochEst) EstimateEpochs(stage dag.StageID) (uint64, uint64) {
	return e.agg[stage], e.model[stage]
}

// randWorkflow builds a layered random DAG: stages in sequence, each task
// depending on a random subset of the previous stage.
func randWorkflow(rng *rand.Rand) *dag.Workflow {
	b := dag.NewBuilder("prop")
	nStages := rng.Intn(4) + 2
	var prev []dag.TaskID
	for s := 0; s < nStages; s++ {
		st := b.AddStage(fmt.Sprintf("s%d", s))
		n := rng.Intn(6) + 1
		var cur []dag.TaskID
		for i := 0; i < n; i++ {
			var deps []dag.TaskID
			for _, d := range prev {
				if rng.Intn(2) == 0 {
					deps = append(deps, d)
				}
			}
			cur = append(cur, b.AddTask(st, fmt.Sprintf("t%d_%d", s, i),
				float64(rng.Intn(50)+1), float64(rng.Intn(5)), float64(rng.Intn(100)+1), deps...))
		}
		prev = cur
	}
	return b.MustBuild()
}

// trajectory drives a sloppy emulation of a run: tasks flow Blocked → Ready
// → Running → Completed (or Quarantined), instances arrive pending, turn
// active, and retire — sometimes mid-run, writing their running tasks back
// to Ready (a DOA write-off). Occasionally a Completed task is reverted,
// producing a non-monotonic snapshot the incremental projector must survive
// by resetting.
type trajectory struct {
	rng    *rand.Rand
	wf     *dag.Workflow
	s      *monitor.Snapshot
	nextID cloud.InstanceID
}

func newTrajectory(rng *rand.Rand, wf *dag.Workflow) *trajectory {
	tr := &trajectory{rng: rng, wf: wf}
	tr.s = &monitor.Snapshot{
		Interval:         30,
		ChargingUnit:     600,
		LagTime:          30,
		SlotsPerInstance: rng.Intn(3) + 1,
		Workflow:         wf,
		Tasks:            make([]monitor.TaskRecord, wf.NumTasks()),
	}
	for _, t := range wf.Tasks {
		tr.s.Tasks[t.ID] = monitor.TaskRecord{ID: t.ID, Stage: t.Stage, State: monitor.Blocked, InputSize: t.InputSize}
	}
	return tr
}

func (tr *trajectory) freeSlot() (cloud.InstanceID, int, bool) {
	for i := range tr.s.Instances {
		inst := &tr.s.Instances[i]
		if inst.State != cloud.Active || inst.Draining {
			continue
		}
		if len(inst.Running) < inst.Slots {
			return inst.ID, len(inst.Running), true
		}
	}
	return 0, 0, false
}

func (tr *trajectory) instance(id cloud.InstanceID) *monitor.InstanceRecord {
	for i := range tr.s.Instances {
		if tr.s.Instances[i].ID == id {
			return &tr.s.Instances[i]
		}
	}
	return nil
}

func removeRunning(inst *monitor.InstanceRecord, id dag.TaskID) {
	for i, r := range inst.Running {
		if r == id {
			inst.Running = append(inst.Running[:i], inst.Running[i+1:]...)
			return
		}
	}
}

// step advances the emulated run by one interval and returns the snapshot.
func (tr *trajectory) step() *monitor.Snapshot {
	rng, s := tr.rng, tr.s
	s.Now += s.Interval
	s.RecentTransfers = s.RecentTransfers[:0]

	// Instance lifecycle: arrivals, activations, retirements.
	if rng.Intn(3) == 0 {
		tr.nextID++
		s.Instances = append(s.Instances, monitor.InstanceRecord{
			ID: tr.nextID, State: cloud.Pending, Slots: s.SlotsPerInstance,
			RequestedAt: s.Now - simtime.Time(rng.Intn(20)),
		})
	}
	for i := range s.Instances {
		inst := &s.Instances[i]
		if inst.State == cloud.Pending && rng.Intn(2) == 0 {
			inst.State = cloud.Active
			inst.ActiveAt = s.Now
		}
		if inst.State == cloud.Active {
			inst.TimeToNextCharge = simtime.Duration(rng.Intn(600))
			if rng.Intn(10) == 0 {
				inst.Draining = true
			}
		}
	}
	if len(s.Instances) > 0 && rng.Intn(5) == 0 {
		// Retire one instance: running tasks are written back to Ready
		// (their attempt died with the machine).
		i := rng.Intn(len(s.Instances))
		for _, id := range s.Instances[i].Running {
			rec := &s.Tasks[id]
			rec.State = monitor.Ready
			rec.StartedAt, rec.Instance, rec.Slot, rec.Elapsed = 0, 0, 0, 0
			rec.TransferObserved, rec.TransferTime = false, 0
		}
		s.Instances = append(s.Instances[:i], s.Instances[i+1:]...)
	}

	// Task lifecycle.
	for id := range s.Tasks {
		rec := &s.Tasks[id]
		switch rec.State {
		case monitor.Blocked:
			ok := true
			for _, d := range tr.wf.Tasks[id].Deps {
				if s.Tasks[d].State != monitor.Completed {
					ok = false
					break
				}
			}
			if ok {
				rec.State = monitor.Ready
				rec.ReadyAt = s.Now - simtime.Time(rng.Intn(int(s.Interval)))
			}
		case monitor.Ready:
			if inst, slot, free := tr.freeSlot(); free && rng.Intn(2) == 0 {
				rec.State = monitor.Running
				rec.StartedAt = s.Now - simtime.Time(rng.Intn(10))
				rec.Instance, rec.Slot = inst, slot
				tr.instance(inst).Running = append(tr.instance(inst).Running, dag.TaskID(id))
			} else if rng.Intn(20) == 0 {
				rec.State = monitor.Quarantined
			}
		case monitor.Running:
			rec.Elapsed = simtime.Duration(s.Now - rec.StartedAt)
			if !rec.TransferObserved && rng.Intn(2) == 0 {
				rec.TransferObserved = true
				rec.TransferTime = simtime.Duration(rng.Intn(5))
				s.RecentTransfers = append(s.RecentTransfers, rec.TransferTime)
			}
			switch rng.Intn(4) {
			case 0:
				rec.State = monitor.Completed
				rec.CompletedAt = s.Now
				rec.ExecTime = rec.Elapsed - rec.TransferTime
				removeRunning(tr.instance(rec.Instance), dag.TaskID(id))
			case 1:
				if rng.Intn(5) == 0 { // quarantined mid-flight (poison task)
					rec.State = monitor.Quarantined
					removeRunning(tr.instance(rec.Instance), dag.TaskID(id))
				}
			}
		case monitor.Completed:
			if rng.Intn(40) == 0 {
				// Non-monotonic revert: the projector must reset, not
				// carry a stale waiting count.
				rec.State = monitor.Ready
				rec.CompletedAt, rec.ExecTime = 0, 0
			}
		}
	}
	return s
}

// TestProjectorMatchesFromScratch is the incremental-projection property
// test: across random workflows and random snapshot trajectories — instance
// retirement, DOA write-offs, quarantined-task removal, epoch bumps,
// non-monotonic reverts — the session-pinned Projector must produce a Load
// byte-identical (JSON) to the from-scratch package-level Project.
func TestProjectorMatchesFromScratch(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wf := randWorkflow(rng)
		est := &epochEst{agg: make([]uint64, wf.NumStages()), model: make([]uint64, wf.NumStages())}
		var proj Projector
		tr := newTrajectory(rng, wf)
		for step := 0; step < 50; step++ {
			if rng.Intn(4) == 0 {
				est.agg[rng.Intn(len(est.agg))]++
			}
			if rng.Intn(4) == 0 {
				est.model[rng.Intn(len(est.model))]++
			}
			s := tr.step()
			inc := proj.Project(s, est)
			ref := Project(s, est)
			ji, err := json.Marshal(inc)
			if err != nil {
				t.Fatalf("seed %d step %d: marshal incremental: %v", seed, step, err)
			}
			jr, err := json.Marshal(ref)
			if err != nil {
				t.Fatalf("seed %d step %d: marshal reference: %v", seed, step, err)
			}
			if !bytes.Equal(ji, jr) {
				t.Fatalf("seed %d step %d: projection diverged\nincremental: %s\nfrom-scratch: %s", seed, step, ji, jr)
			}
		}
	}
}

// TestProjectorDoubleBufferContract pins the Load lifetime rule: the
// returned Load stays intact across the NEXT Project call (double buffer)
// and the two live buffers never alias. Run under -race, concurrent
// projectors on separate sessions also prove the buffers are per-Projector,
// not shared through a pool.
func TestProjectorDoubleBufferContract(t *testing.T) {
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			wf := randWorkflow(rng)
			est := &epochEst{agg: make([]uint64, wf.NumStages()), model: make([]uint64, wf.NumStages())}
			var proj Projector
			tr := newTrajectory(rng, wf)

			prev := proj.Project(tr.step(), est)
			prevJSON, _ := json.Marshal(prev)
			for step := 0; step < 30; step++ {
				cur := proj.Project(tr.step(), est)
				if cur == prev {
					done <- fmt.Errorf("goroutine %d step %d: consecutive Projects returned the same buffer", g, step)
					return
				}
				if len(cur.Tasks) > 0 && len(prev.Tasks) > 0 && &cur.Tasks[0] == &prev.Tasks[0] {
					done <- fmt.Errorf("goroutine %d step %d: consecutive Loads share a Tasks backing array", g, step)
					return
				}
				if again, _ := json.Marshal(prev); !bytes.Equal(again, prevJSON) {
					done <- fmt.Errorf("goroutine %d step %d: previous Load mutated by the next Project call", g, step)
					return
				}
				prev = cur
				prevJSON, _ = json.Marshal(prev)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
