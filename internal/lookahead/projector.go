package lookahead

import (
	"sort"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/simtime"
)

// EpochEstimator is an Estimator whose answers carry cache-invalidation
// epochs, letting a Projector memoize per-task estimates across MAPE
// intervals. agg must change whenever anything feeding a stage's estimates
// other than its regression model changes (stage aggregates, size groups,
// the global transfer estimate); model must change whenever the stage's OGD
// coefficients change. *predict.Predictor satisfies it.
type EpochEstimator interface {
	Estimator
	EstimateEpochs(stage dag.StageID) (agg, model uint64)
}

// stateUnseen marks tasks the projector has not observed yet; it compares
// unequal to every real monitor.TaskState, so the first pass after a reset
// treats every task as freshly transitioned.
const stateUnseen = monitor.TaskState(-1)

// Projector runs the §III-B2 lookahead projection incrementally: one
// Projector is pinned to a session (one workflow run) and carries state
// between MAPE intervals so each Project call only pays for what the new
// snapshot invalidated:
//
//   - dependency wait-counts are maintained by completion deltas instead of
//     re-walking every task's dependency list (O(completions·succs) per
//     interval instead of O(edges));
//   - per-task occupancy estimates are memoized and recomputed only when the
//     task's state or its stage's predictor epochs changed (EpochEstimator);
//   - every simulation buffer — task scratch, instance table, ready queue,
//     event queue, the Load output itself — is reused across calls.
//
// Any non-monotonic snapshot (a task leaving Completed, a different
// workflow) resets the incremental state; correctness never depends on the
// snapshot sequence being well-formed.
//
// The returned *Load is double-buffered: it remains valid until the
// next-but-one Project call on the same Projector, so a caller may keep the
// latest Load while requesting the next. Projectors are not safe for
// concurrent use.
type Projector struct {
	wf      *dag.Workflow
	lastEst Estimator

	// Persistent incremental state, indexed by TaskID.
	waiting   []int32 // dependencies not yet observed Completed
	lastState []monitor.TaskState

	// Memoized estimates, indexed by TaskID; valid while the task state and
	// the stage epochs recorded at fill time still hold.
	estVal   []float64
	estPol   []predict.Policy
	estAgg   []uint64
	estModel []uint64

	// Per-call scratch, reused.
	tasks      []projTask
	instArena  []projInst
	insts      []*projInst
	runArena   []dag.TaskID
	instByID   map[cloud.InstanceID]*projInst
	ready      readyQueue
	evq        eventQueue
	stageAgg   []uint64
	stageModel []uint64
	harvestIDs []dag.TaskID

	// Double-buffered output.
	out    [2]Load
	outIdx int
}

// reset re-pins the projector to wf and discards all incremental state.
// waiting starts at the full dependency count and lastState at stateUnseen,
// so the next pass observes every completed task as a fresh transition and
// decrements its successors exactly once — initialization and steady-state
// share one code path.
func (p *Projector) reset(wf *dag.Workflow) {
	p.wf = wf
	n := wf.NumTasks()
	p.waiting = resize(p.waiting, n)
	p.lastState = resize(p.lastState, n)
	p.estVal = resize(p.estVal, n)
	p.estPol = resize(p.estPol, n)
	p.estAgg = resize(p.estAgg, n)
	p.estModel = resize(p.estModel, n)
	p.tasks = resize(p.tasks, n)
	for _, t := range wf.Tasks {
		p.waiting[t.ID] = int32(len(t.Deps))
		p.lastState[t.ID] = stateUnseen
	}
}

// resize returns s with length n, reusing capacity when possible.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Project simulates one interval ahead. It never mutates the snapshot.
// The semantics are identical to the package-level Project; only the cost
// profile differs.
func (p *Projector) Project(snap *monitor.Snapshot, est Estimator) *Load {
	now := snap.Now
	horizon := now + snap.Interval
	wf := snap.Workflow

	if p.wf != wf || len(p.waiting) != wf.NumTasks() {
		p.reset(wf)
	}
	refreshAll := p.lastEst != est
	p.lastEst = est
	ee, hasEpochs := est.(EpochEstimator)
	if hasEpochs {
		ns := wf.NumStages()
		p.stageAgg = resize(p.stageAgg, ns)
		p.stageModel = resize(p.stageModel, ns)
		for _, st := range wf.Stages {
			p.stageAgg[st.ID], p.stageModel[st.ID] = ee.EstimateEpochs(st.ID)
		}
	}

	// Delta pass: fold the snapshot's new completions into the persistent
	// wait-counts, refresh invalidated estimates, and fill the simulation
	// scratch. A task leaving Completed means the snapshot sequence is not
	// monotonic (a different run, a rolled-back substrate): reset and rerun
	// the pass once — the fresh state absorbs the full snapshot.
	for pass := 0; ; pass++ {
		if p.deltaPass(snap, est, hasEpochs, refreshAll) || pass == 1 {
			break
		}
		p.reset(wf)
	}

	// Capacity: non-draining instances, including pending ones that
	// activate within the interval. Instance scratch is rebuilt per call
	// (the set is small and changes with every scaling decision), but from
	// reused buffers.
	p.instArena = p.instArena[:0]
	if cap(p.instArena) < len(snap.Instances) {
		p.instArena = make([]projInst, 0, len(snap.Instances))
	}
	p.insts = p.insts[:0]
	if p.instByID == nil {
		p.instByID = make(map[cloud.InstanceID]*projInst)
	} else {
		clear(p.instByID)
	}
	slotTotal := 0
	for _, in := range snap.Instances {
		if !in.Draining {
			slotTotal += in.Slots
		}
	}
	p.runArena = resize(p.runArena, slotTotal)
	off := 0
	for _, in := range snap.Instances {
		if in.Draining {
			continue
		}
		p.instArena = append(p.instArena, projInst{
			id:       in.ID,
			slots:    in.Slots,
			free:     in.Slots - len(in.Running),
			activeAt: in.ActiveAt,
			running:  p.runArena[off:off:min(off+in.Slots, slotTotal)],
		})
		off += in.Slots
		pi := &p.instArena[len(p.instArena)-1]
		pi.running = append(pi.running, in.Running...)
		p.insts = append(p.insts, pi)
		p.instByID[in.ID] = pi
	}
	// Insertion sort by ID: the fleet is small and IDs are unique, so this
	// matches any comparison sort and allocates nothing.
	for i := 1; i < len(p.insts); i++ {
		for j := i; j > 0 && p.insts[j].id < p.insts[j-1].id; j-- {
			p.insts[j], p.insts[j-1] = p.insts[j-1], p.insts[j]
		}
	}

	// The event clock starts at zero, mirroring the engine the one-shot
	// projection historically ran on: times are shifted by -now at
	// scheduling and shifted back when fired, keeping the float arithmetic
	// (and hence tie-breaking) bit-identical to the legacy path.
	shift := func(t simtime.Time) simtime.Time {
		d := t - now
		if d < 0 {
			d = 0
		}
		return d
	}
	p.evq.reset()
	p.ready.reset(p.tasks)

	completions := 0

	// Seed: running tasks complete when their predicted remaining occupancy
	// elapses (conservative minimum — possibly immediately). Under Policy 2
	// (running peers only, nothing completed yet) the full estimate counts
	// as remaining: with zero completions the median elapsed run time is
	// the floor on future occupancy too, which is what drives the §III-E
	// growth schedule.
	for _, in := range snap.Instances {
		if in.Draining {
			continue
		}
		for _, tid := range in.Running {
			rec := snap.Task(tid)
			pt := &p.tasks[tid]
			pt.state = monitor.Running
			pt.startedAt = rec.StartedAt
			pt.inst = in.ID
			rem := pt.est - rec.Elapsed
			if pt.pol == predict.PolicyRunningMedian {
				rem = pt.est
			}
			if rem < 0 {
				rem = 0
			}
			end := now + rem
			if simtime.AtOrBefore(end, horizon) {
				p.evq.push(projEvent{time: shift(end), pri: priComplete, id: tid})
			}
		}
	}
	// Ready tasks form the initial backlog.
	for _, t := range wf.Tasks {
		if p.tasks[t.ID].state == monitor.Ready {
			p.ready.push(t.ID)
		}
	}
	// Pending instances activating within the interval trigger dispatch.
	for _, pi := range p.insts {
		if simtime.After(pi.activeAt, now) && simtime.AtOrBefore(pi.activeAt, horizon) {
			p.evq.push(projEvent{time: shift(pi.activeAt), pri: priActivate})
		}
	}

	p.dispatch(now, horizon, shift)
	// Drain all events inside the interval; completion handlers only
	// schedule within the horizon, so the queue terminates.
	for p.evq.len() > 0 {
		ev := p.evq.pop()
		switch ev.pri {
		case priActivate:
			p.dispatch(ev.time+now, horizon, shift)
		case priComplete:
			completions += p.complete(ev.id, ev.time+now, horizon, shift)
		}
	}

	// Harvest Q_task and restart costs at the horizon into the double
	// buffer; the previous call's Load stays untouched.
	out := &p.out[p.outIdx]
	p.outIdx = 1 - p.outIdx
	out.At = horizon
	out.Tasks = out.Tasks[:0]
	if out.RestartCost == nil {
		out.RestartCost = make(map[cloud.InstanceID]float64)
	} else {
		clear(out.RestartCost)
	}
	out.ProjectedCompletions = completions
	// Sunk costs are conservative: every task running at the snapshot is
	// assumed to still hold its slot at the horizon. Trusting a predicted
	// completion here would zero the restart cost of a busy instance and
	// let the steering policy kill work that is merely *expected* to
	// finish — with an optimistic early-stage estimate that causes
	// release/relaunch flapping.
	for _, in := range snap.Instances {
		if in.Draining {
			continue
		}
		c := 0.0
		for _, tid := range in.Running {
			if v := snap.Task(tid).Elapsed + snap.Interval; v > c {
				c = v
			}
		}
		out.RestartCost[in.ID] = c
	}
	// Running tasks first, in instance order.
	for _, pi := range p.insts {
		ids := append(p.harvestIDs[:0], pi.running...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			pt := &p.tasks[id]
			var consumed, rem float64
			if simtime.AtOrAfter(pt.startedAt, now) {
				// Started during the projection.
				consumed = horizon - pt.startedAt
				rem = pt.est - consumed
			} else {
				rec := snap.Task(id)
				consumed = rec.Elapsed + snap.Interval
				rem = pt.est - rec.Elapsed - snap.Interval
			}
			if pt.pol == predict.PolicyRunningMedian {
				rem = pt.est
			}
			if rem < 0 {
				rem = 0
			}
			out.Tasks = append(out.Tasks, TaskLoad{Task: id, Remaining: rem, Running: true})
			if c, ok := out.RestartCost[pi.id]; ok && consumed > c {
				out.RestartCost[pi.id] = consumed
			}
		}
		p.harvestIDs = ids[:0]
	}
	// Then the queued backlog in FIFO order.
	for p.ready.len() > 0 {
		id := p.ready.pop()
		out.Tasks = append(out.Tasks, TaskLoad{Task: id, Remaining: p.tasks[id].est})
	}
	if len(out.Tasks) == 0 {
		// Match the cold-start shape (nil, not a drained buffer), so an
		// incremental projection is indistinguishable — byte for byte —
		// from a from-scratch one.
		out.Tasks = nil
	}
	return out
}

// deltaPass folds one snapshot into the persistent state and fills the
// simulation scratch. It reports false when it found a task that left
// Completed (the caller must reset and rerun); the wait-count decrements
// applied before the detection are discarded by that reset.
func (p *Projector) deltaPass(snap *monitor.Snapshot, est Estimator, hasEpochs, refreshAll bool) bool {
	wf := snap.Workflow
	for _, t := range wf.Tasks {
		i := t.ID
		rec := snap.Task(i)
		cur := rec.State
		prev := p.lastState[i]
		if prev == monitor.Completed && cur != monitor.Completed {
			return false
		}
		if cur == monitor.Completed && prev != monitor.Completed {
			for _, s := range t.Succs {
				p.waiting[s]--
			}
		}
		p.lastState[i] = cur

		pt := &p.tasks[i]
		pt.state = cur
		pt.order = int(i)
		pt.readyAt = rec.ReadyAt
		pt.startedAt = 0
		pt.inst = 0
		if cur == monitor.Completed {
			pt.waiting = 0
			pt.est = 0
			pt.pol = predict.PolicyNone
			continue
		}
		pt.waiting = int(p.waiting[i])
		// A model-epoch change invalidates regardless of the memoized
		// policy: the policy *choice* may itself flip with the model (a
		// stage whose regressor just crossed its training threshold moves
		// from group-median to OGD), so conditioning on the cached policy
		// would keep serving the stale non-OGD answer.
		if !hasEpochs || refreshAll || prev != cur ||
			p.estAgg[i] != p.stageAgg[t.Stage] ||
			p.estModel[i] != p.stageModel[t.Stage] {
			p.estVal[i], p.estPol[i] = est.EstimateOccupancy(snap, i)
			if hasEpochs {
				p.estAgg[i] = p.stageAgg[t.Stage]
				p.estModel[i] = p.stageModel[t.Stage]
			}
		}
		pt.est = p.estVal[i]
		pt.pol = p.estPol[i]
	}
	return true
}

// complete marks a task finished at `at`, releases its slot, readies
// successors, and re-dispatches. It returns 1 when the task newly completed.
func (p *Projector) complete(id dag.TaskID, at simtime.Time, horizon simtime.Time, shift func(simtime.Time) simtime.Time) int {
	pt := &p.tasks[id]
	if pt.state == monitor.Completed {
		return 0
	}
	pt.state = monitor.Completed
	if pi, ok := p.instByID[pt.inst]; ok {
		pi.remove(id)
		pi.free++
	}
	for _, s := range p.wf.Task(id).Succs {
		st := &p.tasks[s]
		if st.state != monitor.Blocked {
			continue
		}
		st.waiting--
		if st.waiting == 0 {
			st.state = monitor.Ready
			st.readyAt = at
			p.ready.push(s)
		}
	}
	p.dispatch(at, horizon, shift)
	return 1
}

// dispatch starts queued tasks on free active slots, FIFO, first instance
// in ID order.
func (p *Projector) dispatch(at simtime.Time, horizon simtime.Time, shift func(simtime.Time) simtime.Time) {
	for p.ready.len() > 0 {
		var pick *projInst
		for _, pi := range p.insts {
			if pi.free > 0 && simtime.AtOrBefore(pi.activeAt, at) {
				pick = pi
				break
			}
		}
		if pick == nil {
			return
		}
		id := p.ready.pop()
		pt := &p.tasks[id]
		pt.state = monitor.Running
		pt.startedAt = at
		pt.inst = pick.id
		pick.free--
		pick.running = append(pick.running, id)
		end := at + pt.est
		if simtime.AtOrBefore(end, horizon) {
			p.evq.push(projEvent{time: shift(end), pri: priComplete, id: id})
		}
	}
}

// Event priorities, matching internal/event's PriInstance < PriTask: an
// instance activating at the same instant a task completes is usable by
// that completion's re-dispatch.
const (
	priActivate = 0
	priComplete = 1
)

// projEvent is one scheduled occurrence of the projection: an instance
// activation (re-dispatch) or a task completion. Value-typed so the queue
// never allocates per event.
type projEvent struct {
	time simtime.Time
	pri  int32
	seq  uint32
	id   dag.TaskID
}

// eventQueue is a binary min-heap of projEvents ordered by (time, pri, seq),
// the same total order as internal/event's engine. seq is unique per push,
// so the order is total and any correct heap pops the identical sequence.
type eventQueue struct {
	evs     []projEvent
	nextSeq uint32
}

func (q *eventQueue) reset() {
	q.evs = q.evs[:0]
	q.nextSeq = 0
}

func (q *eventQueue) len() int { return len(q.evs) }

func (q *eventQueue) less(a, b projEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev projEvent) {
	ev.seq = q.nextSeq
	q.nextSeq++
	q.evs = append(q.evs, ev)
	// Sift up.
	j := len(q.evs) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !q.less(q.evs[j], q.evs[i]) {
			break
		}
		q.evs[i], q.evs[j] = q.evs[j], q.evs[i]
		j = i
	}
}

func (q *eventQueue) pop() projEvent {
	top := q.evs[0]
	n := len(q.evs) - 1
	q.evs[0] = q.evs[n]
	q.evs = q.evs[:n]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q.less(q.evs[r], q.evs[l]) {
			j = r
		}
		if !q.less(q.evs[j], q.evs[i]) {
			break
		}
		q.evs[i], q.evs[j] = q.evs[j], q.evs[i]
		i = j
	}
	return top
}

// readyQueue is a binary min-heap of task IDs ordered by (readyAt, order) —
// the FIFO backlog. Task order values are unique, so the order is total.
type readyQueue struct {
	tasks []projTask
	ids   []dag.TaskID
}

func (q *readyQueue) reset(tasks []projTask) {
	q.tasks = tasks
	q.ids = q.ids[:0]
}

func (q *readyQueue) len() int { return len(q.ids) }

func (q *readyQueue) less(a, b dag.TaskID) bool {
	x, y := &q.tasks[a], &q.tasks[b]
	if x.readyAt != y.readyAt {
		return x.readyAt < y.readyAt
	}
	return x.order < y.order
}

func (q *readyQueue) push(id dag.TaskID) {
	q.ids = append(q.ids, id)
	j := len(q.ids) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !q.less(q.ids[j], q.ids[i]) {
			break
		}
		q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
		j = i
	}
}

func (q *readyQueue) pop() dag.TaskID {
	top := q.ids[0]
	n := len(q.ids) - 1
	q.ids[0] = q.ids[n]
	q.ids = q.ids[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q.less(q.ids[r], q.ids[l]) {
			j = r
		}
		if !q.less(q.ids[j], q.ids[i]) {
			break
		}
		q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
		i = j
	}
	return top
}

// remove deletes id from the instance's running set (order-preserving is
// unnecessary: the harvest sorts).
func (pi *projInst) remove(id dag.TaskID) {
	for i, r := range pi.running {
		if r == id {
			pi.running[i] = pi.running[len(pi.running)-1]
			pi.running = pi.running[:len(pi.running)-1]
			return
		}
	}
}
