// Package lookahead implements WIRE's online workflow simulator (§III-B2).
//
// Given the current monitoring snapshot and the predictor's occupancy
// estimates, Project simulates the workflow forward one MAPE interval on
// the current resource allotment and reports:
//
//   - the upcoming load Q_task: every task expected to be runnable (running
//     or ready) at the start of the next interval, with its predicted
//     minimum remaining slot occupancy; and
//   - the per-instance restart costs c_j: the maximum slot occupancy any
//     task projected to be running on instance j will have consumed by
//     then — the sunk cost of killing that instance (§III-B2, §III-D).
//
// The projection mirrors the framework's FIFO dispatch, but it is the
// controller's approximation: §III-D notes the true schedule may drift, and
// the experiments show the drift is minor.
package lookahead

import (
	"container/heap"
	"sort"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/simtime"
)

// Estimator supplies occupancy estimates; *predict.Predictor satisfies it.
type Estimator interface {
	// EstimateOccupancy returns the estimated total slot occupancy
	// (transfer + execution) for a task.
	EstimateOccupancy(snap *monitor.Snapshot, id dag.TaskID) (float64, predict.Policy)
}

// TaskLoad is one entry of the upcoming load Q_task.
type TaskLoad struct {
	Task dag.TaskID
	// Remaining is the predicted minimum remaining slot occupancy at the
	// start of the next interval.
	Remaining simtime.Duration
	// Running reports whether the task is projected to be executing (as
	// opposed to queued) at that time.
	Running bool
}

// Load is the output of one projection.
type Load struct {
	// At is the start of the next interval (snapshot time + interval).
	At simtime.Time
	// Tasks is Q_task, in projected dispatch order: running tasks first
	// (by instance, slot-fill order), then the queued backlog.
	Tasks []TaskLoad
	// RestartCost maps each current instance to c_j.
	RestartCost map[cloud.InstanceID]float64
	// ProjectedCompletions counts tasks the projection expects to finish
	// within the interval.
	ProjectedCompletions int
}

// TotalRemaining sums the remaining occupancy over Q_task.
func (l *Load) TotalRemaining() float64 {
	s := 0.0
	for _, t := range l.Tasks {
		s += t.Remaining
	}
	return s
}

// Remainings returns just the remaining-occupancy vector, the input
// Algorithm 3 consumes.
func (l *Load) Remainings() []float64 {
	out := make([]float64, len(l.Tasks))
	for i, t := range l.Tasks {
		out[i] = t.Remaining
	}
	return out
}

// projTask is the projection's per-task state.
type projTask struct {
	waiting   int
	state     monitor.TaskState
	est       float64 // estimated total occupancy
	pol       predict.Policy
	startedAt simtime.Time
	inst      cloud.InstanceID
	readyAt   simtime.Time
	order     int
}

// projInst is the projection's per-instance state.
type projInst struct {
	id       cloud.InstanceID
	slots    int
	free     int
	activeAt simtime.Time
	running  map[dag.TaskID]struct{}
}

// Project simulates one interval ahead. It never mutates the snapshot.
func Project(snap *monitor.Snapshot, est Estimator) *Load {
	now := snap.Now
	horizon := now + snap.Interval
	wf := snap.Workflow

	tasks := make([]projTask, wf.NumTasks())
	for _, t := range wf.Tasks {
		rec := snap.Task(t.ID)
		pt := &tasks[t.ID]
		pt.state = rec.State
		pt.order = int(t.ID)
		pt.readyAt = rec.ReadyAt
		if rec.State != monitor.Completed {
			pt.est, pt.pol = est.EstimateOccupancy(snap, t.ID)
			for _, d := range t.Deps {
				if snap.Task(d).State != monitor.Completed {
					pt.waiting++
				}
			}
		}
	}

	// Capacity: non-draining instances, including pending ones that
	// activate within the interval.
	var insts []*projInst
	instByID := make(map[cloud.InstanceID]*projInst)
	for _, in := range snap.Instances {
		if in.Draining {
			continue
		}
		pi := &projInst{
			id:       in.ID,
			slots:    in.Slots,
			free:     in.Slots - len(in.Running),
			activeAt: in.ActiveAt,
			running:  make(map[dag.TaskID]struct{}, len(in.Running)),
		}
		for _, tid := range in.Running {
			pi.running[tid] = struct{}{}
		}
		insts = append(insts, pi)
		instByID[in.ID] = pi
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].id < insts[j].id })

	eng := event.New()
	// The event engine clock starts at zero; shift all times by -now so we
	// can schedule immediately.
	shift := func(t simtime.Time) simtime.Time {
		d := t - now
		if d < 0 {
			d = 0
		}
		return d
	}

	// Ready backlog, FIFO by (readyAt, id) — the controller's
	// approximation of the framework queue.
	queue := &readyHeap{tasks: tasks}
	pushReady := func(id dag.TaskID, at simtime.Time) {
		tasks[id].state = monitor.Ready
		tasks[id].readyAt = at
		heap.Push(queue, id)
	}

	var complete func(id dag.TaskID, at simtime.Time)
	var dispatch func(at simtime.Time)

	completions := 0
	complete = func(id dag.TaskID, at simtime.Time) {
		pt := &tasks[id]
		if pt.state == monitor.Completed {
			return
		}
		pt.state = monitor.Completed
		completions++
		if pi, ok := instByID[pt.inst]; ok {
			delete(pi.running, id)
			pi.free++
		}
		for _, s := range wf.Task(id).Succs {
			st := &tasks[s]
			if st.state != monitor.Blocked {
				continue
			}
			st.waiting--
			if st.waiting == 0 {
				pushReady(s, at)
			}
		}
		dispatch(at)
	}

	start := func(id dag.TaskID, pi *projInst, at simtime.Time) {
		pt := &tasks[id]
		pt.state = monitor.Running
		pt.startedAt = at
		pt.inst = pi.id
		pi.free--
		pi.running[id] = struct{}{}
		end := at + pt.est
		if simtime.AtOrBefore(end, horizon) {
			eng.At(shift(end), event.PriTask, "complete", func(_ *event.Engine, tm simtime.Time) {
				complete(id, tm+now)
			})
		}
	}

	dispatch = func(at simtime.Time) {
		for queue.Len() > 0 {
			var pick *projInst
			for _, pi := range insts {
				if pi.free > 0 && simtime.AtOrBefore(pi.activeAt, at) {
					pick = pi
					break
				}
			}
			if pick == nil {
				return
			}
			id := heap.Pop(queue).(dag.TaskID)
			start(id, pick, at)
		}
	}

	// Seed: running tasks complete when their predicted remaining
	// occupancy elapses (conservative minimum — possibly immediately).
	// Under Policy 2 (running peers only, nothing completed yet) the full
	// estimate counts as remaining: with zero completions the median
	// elapsed run time is the floor on future occupancy too, which is
	// what drives the §III-E growth schedule.
	for _, in := range snap.Instances {
		if in.Draining {
			continue
		}
		for _, tid := range in.Running {
			rec := snap.Task(tid)
			pt := &tasks[tid]
			pt.state = monitor.Running
			pt.startedAt = rec.StartedAt
			pt.inst = in.ID
			rem := pt.est - rec.Elapsed
			if pt.pol == predict.PolicyRunningMedian {
				rem = pt.est
			}
			if rem < 0 {
				rem = 0
			}
			end := now + rem
			if simtime.AtOrBefore(end, horizon) {
				id := tid
				eng.At(shift(end), event.PriTask, "complete", func(_ *event.Engine, tm simtime.Time) {
					complete(id, tm+now)
				})
			}
		}
	}
	// Ready tasks form the initial backlog.
	for _, t := range wf.Tasks {
		if tasks[t.ID].state == monitor.Ready {
			heap.Push(queue, t.ID)
		}
	}
	// Pending instances activating within the interval trigger dispatch.
	for _, pi := range insts {
		if simtime.After(pi.activeAt, now) && simtime.AtOrBefore(pi.activeAt, horizon) {
			at := pi.activeAt
			eng.At(shift(at), event.PriInstance, "activate", func(_ *event.Engine, tm simtime.Time) {
				dispatch(tm + now)
			})
		}
	}

	dispatch(now)
	// Drain all events inside the interval; completion handlers only
	// schedule within the horizon, so the engine terminates.
	_ = eng.Run()

	// Harvest Q_task and restart costs at the horizon.
	out := &Load{
		At:          horizon,
		RestartCost: make(map[cloud.InstanceID]float64),
		// ProjectedCompletions set below.
	}
	out.ProjectedCompletions = completions
	// Sunk costs are conservative: every task running at the snapshot is
	// assumed to still hold its slot at the horizon. Trusting a predicted
	// completion here would zero the restart cost of a busy instance and
	// let the steering policy kill work that is merely *expected* to
	// finish — with an optimistic early-stage estimate that causes
	// release/relaunch flapping.
	for _, in := range snap.Instances {
		if in.Draining {
			continue
		}
		c := 0.0
		for _, tid := range in.Running {
			if v := snap.Task(tid).Elapsed + snap.Interval; v > c {
				c = v
			}
		}
		out.RestartCost[in.ID] = c
	}
	// Running tasks first, in instance order.
	for _, pi := range insts {
		ids := make([]dag.TaskID, 0, len(pi.running))
		for id := range pi.running {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			pt := &tasks[id]
			var consumed, rem float64
			if simtime.AtOrAfter(pt.startedAt, now) {
				// Started during the projection.
				consumed = horizon - pt.startedAt
				rem = pt.est - consumed
			} else {
				rec := snap.Task(id)
				consumed = rec.Elapsed + snap.Interval
				rem = pt.est - rec.Elapsed - snap.Interval
			}
			if pt.pol == predict.PolicyRunningMedian {
				rem = pt.est
			}
			if rem < 0 {
				rem = 0
			}
			out.Tasks = append(out.Tasks, TaskLoad{Task: id, Remaining: rem, Running: true})
			if _, ok := out.RestartCost[pi.id]; ok && consumed > out.RestartCost[pi.id] {
				out.RestartCost[pi.id] = consumed
			}
		}
	}
	// Then the queued backlog in FIFO order.
	for queue.Len() > 0 {
		id := heap.Pop(queue).(dag.TaskID)
		out.Tasks = append(out.Tasks, TaskLoad{Task: id, Remaining: tasks[id].est})
	}
	return out
}

// readyHeap orders task IDs by (readyAt, order).
type readyHeap struct {
	tasks []projTask
	ids   []dag.TaskID
}

func (h *readyHeap) Len() int { return len(h.ids) }

func (h *readyHeap) Less(i, j int) bool {
	a, b := &h.tasks[h.ids[i]], &h.tasks[h.ids[j]]
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.order < b.order
}

func (h *readyHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }

func (h *readyHeap) Push(x any) { h.ids = append(h.ids, x.(dag.TaskID)) }

func (h *readyHeap) Pop() any {
	n := len(h.ids)
	id := h.ids[n-1]
	h.ids = h.ids[:n-1]
	return id
}
