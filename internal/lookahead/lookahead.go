// Package lookahead implements WIRE's online workflow simulator (§III-B2).
//
// Given the current monitoring snapshot and the predictor's occupancy
// estimates, Project simulates the workflow forward one MAPE interval on
// the current resource allotment and reports:
//
//   - the upcoming load Q_task: every task expected to be runnable (running
//     or ready) at the start of the next interval, with its predicted
//     minimum remaining slot occupancy; and
//   - the per-instance restart costs c_j: the maximum slot occupancy any
//     task projected to be running on instance j will have consumed by
//     then — the sunk cost of killing that instance (§III-B2, §III-D).
//
// The projection mirrors the framework's FIFO dispatch, but it is the
// controller's approximation: §III-D notes the true schedule may drift, and
// the experiments show the drift is minor.
package lookahead

import (
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/simtime"
)

// Estimator supplies occupancy estimates; *predict.Predictor satisfies it.
type Estimator interface {
	// EstimateOccupancy returns the estimated total slot occupancy
	// (transfer + execution) for a task.
	EstimateOccupancy(snap *monitor.Snapshot, id dag.TaskID) (float64, predict.Policy)
}

// TaskLoad is one entry of the upcoming load Q_task.
type TaskLoad struct {
	Task dag.TaskID
	// Remaining is the predicted minimum remaining slot occupancy at the
	// start of the next interval.
	Remaining simtime.Duration
	// Running reports whether the task is projected to be executing (as
	// opposed to queued) at that time.
	Running bool
}

// Load is the output of one projection.
type Load struct {
	// At is the start of the next interval (snapshot time + interval).
	At simtime.Time
	// Tasks is Q_task, in projected dispatch order: running tasks first
	// (by instance, slot-fill order), then the queued backlog.
	Tasks []TaskLoad
	// RestartCost maps each current instance to c_j.
	RestartCost map[cloud.InstanceID]float64
	// ProjectedCompletions counts tasks the projection expects to finish
	// within the interval.
	ProjectedCompletions int
}

// TotalRemaining sums the remaining occupancy over Q_task.
func (l *Load) TotalRemaining() float64 {
	s := 0.0
	for _, t := range l.Tasks {
		s += t.Remaining
	}
	return s
}

// Remainings returns just the remaining-occupancy vector, the input
// Algorithm 3 consumes.
func (l *Load) Remainings() []float64 {
	out := make([]float64, len(l.Tasks))
	for i, t := range l.Tasks {
		out[i] = t.Remaining
	}
	return out
}

// projTask is the projection's per-task state.
type projTask struct {
	waiting   int
	state     monitor.TaskState
	est       float64 // estimated total occupancy
	pol       predict.Policy
	startedAt simtime.Time
	inst      cloud.InstanceID
	readyAt   simtime.Time
	order     int
}

// projInst is the projection's per-instance state. running is backed by a
// per-Projector arena slice with capacity equal to the instance's slots.
type projInst struct {
	id       cloud.InstanceID
	slots    int
	free     int
	activeAt simtime.Time
	running  []dag.TaskID
}

// Project simulates one interval ahead on a throwaway Projector. It never
// mutates the snapshot. Long-lived callers (one projection per MAPE
// interval over a session) should hold a Projector instead: it carries the
// dependency wait-counts, memoized estimates, and simulation buffers across
// calls, turning the per-interval cost from O(edges + tasks·estimates) into
// O(tasks + invalidated work).
func Project(snap *monitor.Snapshot, est Estimator) *Load {
	var p Projector
	return p.Project(snap, est)
}

