package lookahead

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/predict"
)

// fixedEst returns a constant occupancy estimate for every task, optionally
// overridden per task.
type fixedEst struct {
	def float64
	per map[dag.TaskID]float64
}

func (f fixedEst) EstimateOccupancy(_ *monitor.Snapshot, id dag.TaskID) (float64, predict.Policy) {
	if v, ok := f.per[id]; ok {
		return v, predict.PolicyGroupMedian
	}
	return f.def, predict.PolicyGroupMedian
}

// twoStage builds stage A (nA tasks) -> stage B (nB tasks, each depending on
// all of A).
func twoStage(nA, nB int) *dag.Workflow {
	b := dag.NewBuilder("two")
	sa := b.AddStage("A")
	sb := b.AddStage("B")
	var as []dag.TaskID
	for i := 0; i < nA; i++ {
		as = append(as, b.AddTask(sa, "a", 10, 0, 1))
	}
	for i := 0; i < nB; i++ {
		b.AddTask(sb, "b", 10, 0, 1, as...)
	}
	return b.MustBuild()
}

// snap builds a snapshot; caller mutates records afterwards.
func snap(wf *dag.Workflow, now, interval float64) *monitor.Snapshot {
	s := &monitor.Snapshot{
		Now:              now,
		Interval:         interval,
		ChargingUnit:     600,
		SlotsPerInstance: 1,
		Workflow:         wf,
		Tasks:            make([]monitor.TaskRecord, wf.NumTasks()),
	}
	for _, t := range wf.Tasks {
		s.Tasks[t.ID] = monitor.TaskRecord{ID: t.ID, Stage: t.Stage, State: monitor.Blocked, InputSize: t.InputSize}
	}
	return s
}

func addInstance(s *monitor.Snapshot, id cloud.InstanceID, slots int, activeAt float64, running ...dag.TaskID) {
	s.Instances = append(s.Instances, monitor.InstanceRecord{
		ID: id, State: cloud.Active, Slots: slots, ActiveAt: activeAt, Running: running,
	})
}

func TestProjectQueuedBacklog(t *testing.T) {
	// 4 ready tasks, 1 slot, estimates 100 >> interval 10: one starts
	// (well, one is running after dispatch at now) and three stay queued.
	wf := twoStage(4, 0)
	s := snap(wf, 100, 10)
	for i := 0; i < 4; i++ {
		s.Tasks[i].State = monitor.Ready
		s.Tasks[i].ReadyAt = 50
	}
	addInstance(s, 0, 1, 0)
	load := Project(s, fixedEst{def: 100})
	if load.At != 110 {
		t.Fatalf("At = %v", load.At)
	}
	if len(load.Tasks) != 4 {
		t.Fatalf("Q_task = %+v, want all 4 runnable", load.Tasks)
	}
	// The dispatched task has consumed the interval: remaining 90.
	if !load.Tasks[0].Running || load.Tasks[0].Remaining != 90 {
		t.Fatalf("first entry = %+v, want running rem=90", load.Tasks[0])
	}
	for _, tl := range load.Tasks[1:] {
		if tl.Running || tl.Remaining != 100 {
			t.Fatalf("queued entry = %+v", tl)
		}
	}
	// Restart cost of instance 0 = consumed 10.
	if load.RestartCost[0] != 10 {
		t.Fatalf("restart cost = %v", load.RestartCost)
	}
}

func TestProjectRunningTaskCompletesAndSuccessorsFire(t *testing.T) {
	// Stage A: one running task with 5s remaining; stage B (2 tasks)
	// becomes ready mid-interval and joins Q_task.
	wf := twoStage(1, 2)
	s := snap(wf, 100, 10)
	s.Tasks[0].State = monitor.Running
	s.Tasks[0].StartedAt = 95
	s.Tasks[0].Elapsed = 5
	addInstance(s, 0, 1, 0, 0)
	load := Project(s, fixedEst{def: 10, per: map[dag.TaskID]float64{0: 10}})
	// Task 0 completes at 105; B tasks ready at 105; one dispatches
	// (runs 105..115 crosses horizon) and one queues.
	if load.ProjectedCompletions != 1 {
		t.Fatalf("completions = %d", load.ProjectedCompletions)
	}
	if len(load.Tasks) != 2 {
		t.Fatalf("Q_task = %+v", load.Tasks)
	}
	var running, queued int
	for _, tl := range load.Tasks {
		if tl.Running {
			running++
			if tl.Remaining != 5 { // started at 105, horizon 110
				t.Fatalf("remaining = %v, want 5", tl.Remaining)
			}
		} else {
			queued++
		}
	}
	if running != 1 || queued != 1 {
		t.Fatalf("running=%d queued=%d", running, queued)
	}
	// Restart cost is conservative: task 0 (running at the snapshot with
	// 5s elapsed) is assumed to hold its slot through the interval even
	// though it is predicted to finish — 5 + 10 = 15 dominates the B
	// task's 5s of projected consumption.
	if load.RestartCost[0] != 15 {
		t.Fatalf("restart cost = %v", load.RestartCost)
	}
}

func TestProjectZeroEstimateCascade(t *testing.T) {
	// Unstarted stages with estimate 0 (Policy 1) cascade through the
	// whole DAG instantly; Q_task comes out empty.
	wf := twoStage(3, 2)
	s := snap(wf, 0, 10)
	for i := 0; i < 3; i++ {
		s.Tasks[i].State = monitor.Ready
	}
	addInstance(s, 0, 1, 0)
	load := Project(s, fixedEst{def: 0})
	if len(load.Tasks) != 0 {
		t.Fatalf("Q_task = %+v, want empty", load.Tasks)
	}
	if load.ProjectedCompletions != 5 {
		t.Fatalf("completions = %d, want 5", load.ProjectedCompletions)
	}
}

func TestProjectPendingInstanceAddsCapacity(t *testing.T) {
	wf := twoStage(2, 0)
	s := snap(wf, 100, 10)
	s.Tasks[0].State = monitor.Ready
	s.Tasks[1].State = monitor.Ready
	addInstance(s, 0, 1, 0)
	// Second instance activates mid-interval.
	s.Instances = append(s.Instances, monitor.InstanceRecord{
		ID: 1, State: cloud.Pending, Slots: 1, ActiveAt: 105,
	})
	load := Project(s, fixedEst{def: 100})
	runningCount := 0
	for _, tl := range load.Tasks {
		if tl.Running {
			runningCount++
		}
	}
	if runningCount != 2 {
		t.Fatalf("running = %d, want 2 (pending instance activated)", runningCount)
	}
	// The late starter consumed only 5s.
	if load.RestartCost[1] != 5 {
		t.Fatalf("restart cost inst1 = %v", load.RestartCost)
	}
}

func TestProjectSkipsDrainingInstances(t *testing.T) {
	wf := twoStage(2, 0)
	s := snap(wf, 100, 10)
	s.Tasks[0].State = monitor.Ready
	s.Tasks[1].State = monitor.Ready
	addInstance(s, 0, 1, 0)
	s.Instances = append(s.Instances, monitor.InstanceRecord{
		ID: 1, State: cloud.Active, Slots: 1, ActiveAt: 0, Draining: true,
	})
	load := Project(s, fixedEst{def: 100})
	if _, ok := load.RestartCost[1]; ok {
		t.Fatal("draining instance should not appear in restart costs")
	}
	running := 0
	for _, tl := range load.Tasks {
		if tl.Running {
			running++
		}
	}
	if running != 1 {
		t.Fatalf("running = %d, want 1 (draining instance unused)", running)
	}
}

func TestProjectOverdueRunningTask(t *testing.T) {
	// A running task past its estimate is predicted to finish
	// immediately; its successor work enters Q_task.
	wf := twoStage(1, 1)
	s := snap(wf, 100, 10)
	s.Tasks[0].State = monitor.Running
	s.Tasks[0].StartedAt = 0
	s.Tasks[0].Elapsed = 100
	addInstance(s, 0, 1, 0, 0)
	load := Project(s, fixedEst{def: 50})
	// Task 0 completes at 100 (remaining 0); task 1 starts at 100 with
	// est 50, remaining 40 at horizon 110.
	if len(load.Tasks) != 1 || !load.Tasks[0].Running || load.Tasks[0].Remaining != 40 {
		t.Fatalf("Q_task = %+v", load.Tasks)
	}
}

func TestProjectFIFOOrderByReadyTime(t *testing.T) {
	wf := twoStage(3, 0)
	s := snap(wf, 100, 1)
	// No instances: all stay queued; order must follow (readyAt, id).
	s.Tasks[0].State = monitor.Ready
	s.Tasks[0].ReadyAt = 30
	s.Tasks[1].State = monitor.Ready
	s.Tasks[1].ReadyAt = 10
	s.Tasks[2].State = monitor.Ready
	s.Tasks[2].ReadyAt = 10
	load := Project(s, fixedEst{def: 100})
	want := []dag.TaskID{1, 2, 0}
	for i, tl := range load.Tasks {
		if tl.Task != want[i] {
			t.Fatalf("order = %+v, want %v", load.Tasks, want)
		}
	}
}

func TestProjectDoesNotMutateSnapshot(t *testing.T) {
	wf := twoStage(2, 1)
	s := snap(wf, 100, 10)
	s.Tasks[0].State = monitor.Running
	s.Tasks[0].Elapsed = 9
	s.Tasks[1].State = monitor.Ready
	addInstance(s, 0, 2, 0, 0)
	before := make([]monitor.TaskRecord, len(s.Tasks))
	copy(before, s.Tasks)
	Project(s, fixedEst{def: 10})
	for i := range before {
		if s.Tasks[i] != before[i] {
			t.Fatalf("snapshot task %d mutated", i)
		}
	}
}

func TestLoadHelpers(t *testing.T) {
	l := &Load{Tasks: []TaskLoad{{Remaining: 10}, {Remaining: 20}}}
	if l.TotalRemaining() != 30 {
		t.Fatalf("TotalRemaining = %v", l.TotalRemaining())
	}
	r := l.Remainings()
	if len(r) != 2 || r[0] != 10 || r[1] != 20 {
		t.Fatalf("Remainings = %v", r)
	}
}
