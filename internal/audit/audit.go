// Package audit is the offline consistency auditor for the sharded control
// plane: it ingests every shard's journal directory after a run (or a
// nemesis) and proves machine-checkable global invariants over the merged
// write-ahead logs — exactly-once planning, single-writer fencing, monotone
// sequence numbers, lease identity, and tenant spend accounting. The checks
// deliberately re-parse the JSONL independently of the service package's
// replay path: an auditor that shares the production decoder inherits its
// blind spots.
//
// The invariants, by check name as they appear in the violation report:
//
//   - exactly_once: every (session, seq) pair resolves to byte-identical
//     response bytes across every WAL copy — the fenced source left behind
//     by a handoff and the adopter's copy must agree on what was decided.
//   - double_billing: a duplicate seq WITHIN one WAL whose response bytes
//     diverge. (A byte-identical duplicate is the benign crash-window: the
//     record was journaled, the ack was lost, the retry re-journaled the
//     same decision.)
//   - seq_regression: a plan record's seq is at or below an earlier
//     record's in the same WAL with different bytes — the log went back in
//     time.
//   - seq_gap: the union of seqs across a session's copies must cover
//     1..max with no holes — a hole is a decision a client observed that no
//     surviving journal carries.
//   - split_brain: at most one unfenced copy of a session may exist across
//     all directories; two unfenced copies are two live writers.
//   - fence_epoch_reuse: a session's fence files must carry distinct
//     positive epochs — the same epoch claimed twice means two adopters
//     believed they won the same handoff.
//   - lease_identity: over the execution live journals, every lease is
//     granted at most once, reaches at most one terminal state
//     (completed/reclaimed/superseded), and no terminal appears for a lease
//     never granted; granted == completed + reclaimed + superseded +
//     outstanding by construction, and the totals are reported.
//   - budget_overspend: each tenant's spend in charging units (recomputed
//     from the plan snapshots: instances × interval, divided by the last
//     observed charging unit) must not exceed its budget plus the
//     configured slack. Admission control lets an idle tenant start one
//     session past its budget by design, so a slack of one session's worth
//     of units is legitimate; anything beyond is double-charging.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/exec"
)

// Config selects what to audit.
type Config struct {
	// Dirs are the journal directories to ingest — one per shard, plus any
	// execution live-journal directories. Required.
	Dirs []string
	// TenantBudgets, when non-empty, enables the budget_overspend check:
	// tenant name → budget in charging units.
	TenantBudgets map[string]float64
	// SlackUnits is the allowed overshoot on budget_overspend (default 0).
	// Admission control admits an idle tenant's next session even at the
	// budget edge, so a slack of one session's worth of units reflects the
	// documented contract rather than a bug.
	SlackUnits float64
}

// Violation is one invariant breach.
type Violation struct {
	Check   string `json:"check"`
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Dir     string `json:"dir,omitempty"`
	Detail  string `json:"detail"`
}

// LeaseTotals is the lease identity equation over the live journals:
// Granted == Completed + Reclaimed + Superseded + Outstanding.
type LeaseTotals struct {
	Granted     int `json:"granted"`
	Completed   int `json:"completed"`
	Reclaimed   int `json:"reclaimed"`
	Superseded  int `json:"superseded"`
	Outstanding int `json:"outstanding"`
}

// Report is the auditor's verdict: corpus statistics plus every violation
// found. An empty Violations slice is the certificate.
type Report struct {
	Dirs        []string    `json:"dirs"`
	Sessions    int         `json:"sessions"`
	WALs        int         `json:"wals"`
	Fenced      int         `json:"fenced"`
	Plans       int         `json:"plans"`
	LiveRecords int         `json:"live_records"`
	Leases      LeaseTotals `json:"leases"`
	// TenantSpend is each tenant's recomputed spend in charging units.
	TenantSpend map[string]float64 `json:"tenant_spend_units,omitempty"`
	Violations  []Violation        `json:"violations"`
}

// Clean reports whether the audit found no violations.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// walRec mirrors the service WAL line shape, decoded independently.
// Response and Snapshot stay raw: the exactly-once check compares bytes, not
// any interpretation of them.
type walRec struct {
	Type     string          `json:"type"`
	ID       string          `json:"id,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
	Seq      int64           `json:"seq,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// snapBill is the subset of a plan snapshot the billing recomputation needs.
type snapBill struct {
	Instances     []json.RawMessage `json:"instances"`
	IntervalS     float64           `json:"interval_s"`
	ChargingUnitS float64           `json:"charging_unit_s"`
}

// planRec is one parsed plan record.
type planRec struct {
	seq   int64
	resp  string // compacted response bytes
	spend float64
	unitS float64
}

// walCopy is one WAL file — one copy of one session's log. A session can
// have several copies: the fenced source a handoff left behind plus the
// adopter's live copy.
type walCopy struct {
	dir        string
	path       string
	session    string
	tenant     string
	fenced     bool
	fenceEpoch int64
	plans      []planRec
}

// fenceRec mirrors the <wal>.fence file body.
type fenceRec struct {
	Epoch int64 `json:"epoch"`
}

// Run audits the configured directories and returns the report. Only I/O
// errors are returned as errors; invariant breaches are violations in the
// report.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Dirs) == 0 {
		return nil, fmt.Errorf("audit: no journal directories given")
	}
	rep := &Report{Dirs: append([]string(nil), cfg.Dirs...)}
	var copies []*walCopy
	var liveFiles []string
	for _, dir := range cfg.Dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("audit: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			path := filepath.Join(dir, name)
			switch {
			case strings.HasSuffix(name, ".wal"):
				c, err := parseWAL(dir, path, rep)
				if err != nil {
					return nil, err
				}
				copies = append(copies, c)
			case strings.HasPrefix(name, "live-") && strings.HasSuffix(name, ".jsonl"):
				liveFiles = append(liveFiles, path)
			}
		}
	}
	rep.WALs = len(copies)
	mergeSessions(cfg, rep, copies)
	if err := auditLeases(rep, liveFiles); err != nil {
		return nil, err
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		return a.Detail < b.Detail
	})
	return rep, nil
}

// parseWAL reads one WAL copy, running the within-file checks as it goes.
// A torn final line (partial write at crash) is tolerated — that is the
// documented crash window — but a malformed line with records after it is
// corruption, not a crash artifact.
func parseWAL(dir, path string, rep *Report) (*walCopy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	defer f.Close()
	c := &walCopy{dir: dir, path: path, session: strings.TrimSuffix(filepath.Base(path), ".wal")}
	if b, err := os.ReadFile(path + ".fence"); err == nil {
		c.fenced = true
		var fr fenceRec
		if json.Unmarshal(b, &fr) == nil {
			c.fenceEpoch = fr.Epoch
		}
		rep.Fenced++
	}

	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: %s: %w", path, err)
	}

	maxSeq := int64(0)
	seen := map[int64]string{}
	for i, line := range lines {
		var rec walRec
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn tail: the crash window, truncated on replay
			}
			rep.Violations = append(rep.Violations, Violation{
				Check: "corrupt_record", Session: c.session, Dir: dir,
				Detail: fmt.Sprintf("unparseable record %d of %d (not a torn tail): %v", i+1, len(lines), err),
			})
			continue
		}
		switch rec.Type {
		case "create":
			c.tenant = rec.Tenant
		case "plan":
			resp := compact(rec.Response)
			if prev, dup := seen[rec.Seq]; dup {
				if prev != resp {
					rep.Violations = append(rep.Violations, Violation{
						Check: "double_billing", Session: c.session, Tenant: c.tenant, Dir: dir,
						Detail: fmt.Sprintf("seq %d journaled twice with divergent responses — the same interval was decided (and billed) twice", rec.Seq),
					})
				}
				// Byte-identical duplicate: journaled, ack lost, retried.
			} else if rec.Seq <= maxSeq {
				rep.Violations = append(rep.Violations, Violation{
					Check: "seq_regression", Session: c.session, Tenant: c.tenant, Dir: dir,
					Detail: fmt.Sprintf("seq %d appended after seq %d", rec.Seq, maxSeq),
				})
			}
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
			seen[rec.Seq] = resp
			pr := planRec{seq: rec.Seq, resp: resp}
			if len(rec.Snapshot) > 0 {
				var sb snapBill
				if json.Unmarshal(rec.Snapshot, &sb) == nil {
					pr.spend = float64(len(sb.Instances)) * sb.IntervalS
					pr.unitS = sb.ChargingUnitS
				}
			}
			c.plans = append(c.plans, pr)
			rep.Plans++
		}
	}
	return c, nil
}

// mergeSessions runs the cross-copy checks: exactly-once agreement, the
// single-unfenced-writer rule, fence epoch uniqueness, seq coverage, and the
// tenant spend recomputation.
func mergeSessions(cfg Config, rep *Report, copies []*walCopy) {
	bySession := map[string][]*walCopy{}
	for _, c := range copies {
		bySession[c.session] = append(bySession[c.session], c)
	}
	rep.Sessions = len(bySession)
	sessions := make([]string, 0, len(bySession))
	for id := range bySession {
		sessions = append(sessions, id)
	}
	sort.Strings(sessions)

	spendS := map[string]float64{}
	unitS := map[string]float64{}
	for _, id := range sessions {
		group := bySession[id]
		tenant := ""
		unfenced := 0
		epochs := map[int64][]string{}
		merged := map[int64]planRec{}
		for _, c := range group {
			if c.tenant != "" {
				tenant = c.tenant
			}
			if !c.fenced {
				unfenced++
			} else if c.fenceEpoch > 0 {
				epochs[c.fenceEpoch] = append(epochs[c.fenceEpoch], c.dir)
			}
			for _, pr := range c.plans {
				if got, ok := merged[pr.seq]; ok {
					if got.resp != pr.resp {
						rep.Violations = append(rep.Violations, Violation{
							Check: "exactly_once", Session: id, Tenant: tenant, Dir: c.dir,
							Detail: fmt.Sprintf("seq %d has divergent response bytes across journal copies", pr.seq),
						})
					}
					continue
				}
				merged[pr.seq] = pr
			}
		}
		if unfenced > 1 {
			rep.Violations = append(rep.Violations, Violation{
				Check: "split_brain", Session: id, Tenant: tenant,
				Detail: fmt.Sprintf("%d unfenced journal copies — more than one live writer", unfenced),
			})
		}
		for ep, dirs := range epochs {
			if len(dirs) > 1 {
				rep.Violations = append(rep.Violations, Violation{
					Check: "fence_epoch_reuse", Session: id, Tenant: tenant,
					Detail: fmt.Sprintf("fence epoch %d claimed by %d handoffs (%s)", ep, len(dirs), strings.Join(dirs, ", ")),
				})
			}
		}
		maxSeq := int64(0)
		for seq := range merged {
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		for seq := int64(1); seq <= maxSeq; seq++ {
			if _, ok := merged[seq]; !ok {
				rep.Violations = append(rep.Violations, Violation{
					Check: "seq_gap", Session: id, Tenant: tenant,
					Detail: fmt.Sprintf("no surviving journal carries seq %d (max %d)", seq, maxSeq),
				})
			}
		}
		if tenant != "" {
			// Charge each decided interval exactly once, in seq order so
			// "last observed charging unit" matches the metering rule.
			seqs := make([]int64, 0, len(merged))
			for seq := range merged {
				seqs = append(seqs, seq)
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			for _, seq := range seqs {
				pr := merged[seq]
				spendS[tenant] += pr.spend
				if pr.unitS > 0 {
					unitS[tenant] = pr.unitS
				}
			}
		}
	}

	rep.TenantSpend = map[string]float64{}
	for tenant, s := range spendS {
		u := unitS[tenant]
		if u <= 0 {
			u = 3600
		}
		rep.TenantSpend[tenant] = s / u
	}
	for tenant, budget := range cfg.TenantBudgets {
		if spent := rep.TenantSpend[tenant]; spent > budget+cfg.SlackUnits {
			rep.Violations = append(rep.Violations, Violation{
				Check: "budget_overspend", Tenant: tenant,
				Detail: fmt.Sprintf("spent %.2f charging units against a budget of %.2f (+%.2f slack)", spent, budget, cfg.SlackUnits),
			})
		}
	}
}

// auditLeases replays the execution live journals and checks the lease
// identity: one grant, at most one terminal, no orphan terminals.
func auditLeases(rep *Report, files []string) error {
	sort.Strings(files)
	type leaseState struct {
		grants    int
		terminals []string
	}
	leases := map[int64]*leaseState{}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("audit: %w", err)
		}
		recs, err := exec.ReadRecords(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("audit: %s: %w", path, err)
		}
		rep.LiveRecords += len(recs)
		for _, rec := range recs {
			if rec.Lease == nil {
				continue
			}
			id := *rec.Lease
			ls := leases[id]
			if ls == nil {
				ls = &leaseState{}
				leases[id] = ls
			}
			switch rec.Kind {
			case exec.RecLeaseGranted, exec.RecLeaseSpeculated:
				ls.grants++
				if ls.grants == 2 { // flag once, not per extra grant
					rep.Violations = append(rep.Violations, Violation{
						Check: "lease_identity", Dir: filepath.Dir(path),
						Detail: fmt.Sprintf("lease %d granted more than once", id),
					})
				}
			case exec.RecLeaseCompleted, exec.RecLeaseReclaimed, exec.RecLeaseSuperseded:
				ls.terminals = append(ls.terminals, rec.Kind)
				if len(ls.terminals) == 2 {
					rep.Violations = append(rep.Violations, Violation{
						Check: "lease_identity", Dir: filepath.Dir(path),
						Detail: fmt.Sprintf("lease %d reached terminal states %s", id, strings.Join(ls.terminals, "+")),
					})
				}
			}
		}
	}
	ids := make([]int64, 0, len(leases))
	for id := range leases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ls := leases[id]
		if ls.grants == 0 && len(ls.terminals) > 0 {
			rep.Violations = append(rep.Violations, Violation{
				Check:  "lease_identity",
				Detail: fmt.Sprintf("lease %d reached %s without ever being granted", id, ls.terminals[0]),
			})
		}
		if ls.grants > 0 {
			rep.Leases.Granted++
			switch {
			case len(ls.terminals) == 0:
				rep.Leases.Outstanding++
			default:
				switch ls.terminals[0] {
				case exec.RecLeaseCompleted:
					rep.Leases.Completed++
				case exec.RecLeaseReclaimed:
					rep.Leases.Reclaimed++
				case exec.RecLeaseSuperseded:
					rep.Leases.Superseded++
				}
			}
		}
	}
	return nil
}

// compact canonicalizes raw JSON for byte comparison (whitespace-insensitive,
// key order preserved — the journal encoder is deterministic, so any real
// divergence survives compaction).
func compact(raw json.RawMessage) string {
	if len(raw) == 0 {
		return ""
	}
	var buf strings.Builder
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return string(raw)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return string(raw)
	}
	buf.Write(b)
	return buf.String()
}
