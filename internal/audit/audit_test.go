package audit

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSelfTestFullCoverage is the mutation-coverage acceptance gate: every
// seeded corruption must be flagged by the check named for it. An auditor
// that certifies a corrupted corpus is a liability, so 100% is the bar.
func TestSelfTestFullCoverage(t *testing.T) {
	res, err := SelfTest()
	if err != nil {
		t.Fatalf("selftest: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("auditor missed %d of %d seeded corruption(s):\n%v", len(res.Missed), res.Cases, res.Missed)
	}
	if res.Caught != res.Cases {
		t.Fatalf("caught %d of %d cases with no misses reported — selftest accounting bug", res.Caught, res.Cases)
	}
}

// TestCleanCorpusReport pins the report statistics over the clean baseline:
// sessions, WAL copies, fences, merged plans, lease totals, and the lease
// identity equation.
func TestCleanCorpusReport(t *testing.T) {
	root := t.TempDir()
	a := filepath.Join(root, "shard-a")
	b := filepath.Join(root, "shard-b")
	for _, d := range []string{a, b} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := cleanCorpus(a, b); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Dirs: []string{a, b}, TenantBudgets: map[string]float64{"acme": 1}, SlackUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean corpus flagged: %+v", rep.Violations)
	}
	if rep.Sessions != 2 || rep.WALs != 3 || rep.Fenced != 1 {
		t.Errorf("sessions=%d wals=%d fenced=%d, want 2/3/1", rep.Sessions, rep.WALs, rep.Fenced)
	}
	lt := rep.Leases
	if lt.Granted != lt.Completed+lt.Reclaimed+lt.Superseded+lt.Outstanding {
		t.Errorf("lease identity broken: %+v", lt)
	}
	if lt.Granted != 3 || lt.Completed != 1 || lt.Reclaimed != 1 || lt.Outstanding != 1 {
		t.Errorf("lease totals %+v, want granted=3 completed=1 reclaimed=1 outstanding=1", lt)
	}
	// 4 merged plan intervals (3 for s-handed, 1 for s-solo) at
	// (2,2,2,1) instances x 30s = 210 instance-seconds / 3600 = 0.0583 units.
	spend := rep.TenantSpend["acme"]
	if spend <= 0 || spend > 1 {
		t.Errorf("acme spend %.4f units, want small positive", spend)
	}
}

// TestRunRejectsEmptyConfig pins the I/O error contract.
func TestRunRejectsEmptyConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Dirs: []string{filepath.Join(t.TempDir(), "missing")}}); err == nil {
		t.Fatal("missing directory accepted")
	}
}
