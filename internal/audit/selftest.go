package audit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SelfTestResult is the mutation-coverage verdict: every seeded corruption
// must be flagged by the check named for it, and the uncorrupted baseline
// must audit clean. An auditor that misses a seeded corruption is worse than
// no auditor — it certifies broken journals.
type SelfTestResult struct {
	Cases  int      `json:"cases"`
	Caught int      `json:"caught"`
	Missed []string `json:"missed,omitempty"`
}

// Ok reports full mutation coverage.
func (r *SelfTestResult) Ok() bool { return len(r.Missed) == 0 }

// selfTestCase seeds one corruption into a fresh journal corpus and names
// the check that must flag it.
type selfTestCase struct {
	name  string
	check string
	seed  func(dir string) error
	cfg   func(cfg *Config)
}

// wal writes a session WAL from raw JSONL lines.
func stWAL(dir, session string, lines ...string) error {
	return os.WriteFile(filepath.Join(dir, session+".wal"), []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// stFence fences a session's WAL at an epoch.
func stFence(dir, session string, epoch int64) error {
	body := fmt.Sprintf(`{"epoch":%d,"from":"selftest"}`, epoch)
	return os.WriteFile(filepath.Join(dir, session+".wal.fence"), []byte(body), 0o644)
}

func stCreate(id, tenant string) string {
	return fmt.Sprintf(`{"type":"create","id":%q,"policy":"wire","tenant":%q,"created_at":"2026-01-01T00:00:00Z"}`, id, tenant)
}

// stPlan builds a plan record with n instances on a 30s interval and a
// 3600s charging unit; marker differentiates response bytes.
func stPlan(seq int64, n int, marker string) string {
	insts := make([]string, n)
	for i := range insts {
		insts[i] = fmt.Sprintf(`{"id":%d}`, i)
	}
	return fmt.Sprintf(`{"type":"plan","seq":%d,"snapshot":{"instances":[%s],"interval_s":30,"charging_unit_s":3600,"now_s":%d},"response":{"seq":%d,"decision":{"launch":%d,"note":%q}}}`,
		seq, strings.Join(insts, ","), seq*30, seq, n, marker)
}

func stLive(dir string, lines ...string) error {
	return os.WriteFile(filepath.Join(dir, "live-selftest.jsonl"), []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

func stLease(seq int64, kind string, lease int64) string {
	return fmt.Sprintf(`{"seq":%d,"wall_ms":%d,"now_s":%d,"kind":%q,"lease":%d}`, seq, seq, seq, kind, lease)
}

// cleanCorpus writes an invariant-respecting baseline: two sessions (one
// handed off with a benign crash-window duplicate), one healthy lease
// history, and a tenant inside budget.
func cleanCorpus(a, b string) error {
	if err := stWAL(a, "s-handed",
		stCreate("s-handed", "acme"),
		stPlan(1, 2, "v"),
		stPlan(2, 2, "v"),
	); err != nil {
		return err
	}
	if err := stFence(a, "s-handed", 7); err != nil {
		return err
	}
	if err := stWAL(b, "s-handed",
		stCreate("s-handed", "acme"),
		stPlan(1, 2, "v"),
		stPlan(2, 2, "v"), // crash window: re-journaled byte-identical
		stPlan(2, 2, "v"),
		stPlan(3, 2, "v"),
	); err != nil {
		return err
	}
	if err := stWAL(b, "s-solo",
		stCreate("s-solo", "acme"),
		stPlan(1, 1, "v"),
	); err != nil {
		return err
	}
	return stLive(a,
		stLease(1, "lease-granted", 100),
		stLease(2, "lease-completed", 100),
		stLease(3, "lease-granted", 101),
		stLease(4, "lease-reclaimed", 101),
		stLease(5, "lease-granted", 102),
	)
}

// SelfTest runs the auditor against seeded corruptions and reports which it
// caught. Each case corrupts a fresh corpus in its own way; the audit must
// flag it with the expected check name (and the baseline must be clean).
func SelfTest() (*SelfTestResult, error) {
	cases := []selfTestCase{
		{
			name: "baseline stays clean", check: "",
			seed: func(string) error { return nil },
		},
		{
			name: "regressed seq", check: "seq_regression",
			seed: func(b string) error {
				return stWAL(b, "s-solo",
					stCreate("s-solo", "acme"),
					stPlan(1, 1, "v"),
					stPlan(5, 1, "v"),
					stPlan(3, 1, "v"),
				)
			},
		},
		{
			name: "lost decision (seq gap)", check: "seq_gap",
			seed: func(b string) error {
				return stWAL(b, "s-solo",
					stCreate("s-solo", "acme"),
					stPlan(1, 1, "v"),
					stPlan(4, 1, "v"),
				)
			},
		},
		{
			name: "dual unfenced writers", check: "split_brain",
			seed: func(b string) error {
				// Remove the fence: both copies of s-handed now claim to
				// be the live writer.
				return os.Remove(filepath.Join(filepath.Dir(b), "shard-a", "s-handed.wal.fence"))
			},
		},
		{
			name: "divergent retry (exactly-once)", check: "exactly_once",
			seed: func(b string) error {
				return stWAL(b, "s-handed",
					stCreate("s-handed", "acme"),
					stPlan(1, 2, "v"),
					stPlan(2, 2, "DIVERGENT"),
					stPlan(3, 2, "v"),
				)
			},
		},
		{
			name: "double-billed interval", check: "double_billing",
			seed: func(b string) error {
				return stWAL(b, "s-solo",
					stCreate("s-solo", "acme"),
					stPlan(1, 1, "v"),
					stPlan(2, 1, "first"),
					stPlan(2, 3, "second"),
				)
			},
		},
		{
			name: "fence epoch reuse", check: "fence_epoch_reuse",
			seed: func(b string) error {
				// Fence shard-b's copy at the SAME epoch shard-a's fence
				// already claims: two adopters believed they won epoch 7.
				// A third, unfenced copy on shard-c keeps the live-writer
				// and seq-coverage invariants intact.
				if err := stFence(b, "s-handed", 7); err != nil {
					return err
				}
				return stWAL(filepath.Join(filepath.Dir(b), "shard-c"), "s-handed",
					stCreate("s-handed", "acme"),
					stPlan(1, 2, "v"),
					stPlan(2, 2, "v"),
					stPlan(3, 2, "v"),
				)
			},
		},
		{
			name: "budget overspend", check: "budget_overspend",
			seed: func(b string) error {
				lines := []string{stCreate("s-spender", "acme")}
				for seq := int64(1); seq <= 200; seq++ {
					lines = append(lines, stPlan(seq, 8, "v"))
				}
				return stWAL(b, "s-spender", lines...)
			},
			cfg: func(cfg *Config) {
				cfg.TenantBudgets = map[string]float64{"acme": 1}
				cfg.SlackUnits = 1
			},
		},
		{
			name: "lease double-complete", check: "lease_identity",
			seed: func(b string) error {
				return stLive(b,
					stLease(1, "lease-granted", 200),
					stLease(2, "lease-completed", 200),
					stLease(3, "lease-completed", 200),
				)
			},
		},
		{
			name: "lease double-grant", check: "lease_identity",
			seed: func(b string) error {
				return stLive(b,
					stLease(1, "lease-granted", 201),
					stLease(2, "lease-granted", 201),
				)
			},
		},
		{
			name: "orphan lease terminal", check: "lease_identity",
			seed: func(b string) error {
				return stLive(b, stLease(1, "lease-reclaimed", 202))
			},
		},
		{
			name: "mid-file corruption", check: "corrupt_record",
			seed: func(b string) error {
				return stWAL(b, "s-solo",
					stCreate("s-solo", "acme"),
					`{"type":"plan","seq":1,"snapsho`, // torn — but NOT the tail
					stPlan(2, 1, "v"),
				)
			},
		},
	}

	res := &SelfTestResult{Cases: len(cases)}
	for _, tc := range cases {
		root, err := os.MkdirTemp("", "wire-audit-selftest-")
		if err != nil {
			return nil, err
		}
		a := filepath.Join(root, "shard-a")
		b := filepath.Join(root, "shard-b")
		c := filepath.Join(root, "shard-c")
		for _, d := range []string{a, b, c} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				os.RemoveAll(root)
				return nil, err
			}
		}
		if err := cleanCorpus(a, b); err != nil {
			os.RemoveAll(root)
			return nil, err
		}
		if err := tc.seed(b); err != nil {
			os.RemoveAll(root)
			return nil, fmt.Errorf("audit selftest %q: seeding: %w", tc.name, err)
		}
		cfg := Config{Dirs: []string{a, b, c}}
		if tc.cfg != nil {
			tc.cfg(&cfg)
		}
		rep, err := Run(cfg)
		os.RemoveAll(root)
		if err != nil {
			return nil, fmt.Errorf("audit selftest %q: %w", tc.name, err)
		}
		switch {
		case tc.check == "":
			if rep.Clean() {
				res.Caught++
			} else {
				res.Missed = append(res.Missed, fmt.Sprintf("%s: expected a clean report, got %d violation(s): %+v", tc.name, len(rep.Violations), rep.Violations))
			}
		default:
			if hasCheck(rep, tc.check) {
				res.Caught++
			} else {
				res.Missed = append(res.Missed, fmt.Sprintf("%s: check %s did not fire (violations: %+v)", tc.name, tc.check, rep.Violations))
			}
		}
	}
	return res, nil
}

func hasCheck(rep *Report, check string) bool {
	for _, v := range rep.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}
