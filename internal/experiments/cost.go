package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// PolicyNames lists the four resource-management settings of §IV-C3 in
// report order.
var PolicyNames = []string{"full-site", "pure-reactive", "reactive-conserving", "wire"}

// newController builds a fresh controller for a policy name (stateful
// controllers must not be shared across runs).
func newController(policy string) (sim.Controller, error) {
	switch policy {
	case "full-site":
		return baseline.Static{}, nil
	case "pure-reactive":
		return baseline.PureReactive{}, nil
	case "reactive-conserving":
		return &baseline.ReactiveConserving{}, nil
	case "wire":
		return core.New(core.Config{}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", policy)
	}
}

// CostCell aggregates the repetitions of one (run, policy, unit) setting.
type CostCell struct {
	RunKey  string
	Display string
	Policy  string
	Unit    simtime.Duration
	Summary metrics.CostSummary
}

// CostResult holds the full Figure 5/6 grid.
type CostResult struct {
	Cells []CostCell
}

// CostExperiment runs the grid: every catalogued run × the four policies ×
// the configured charging units × Reps repetitions (experiments E5/E6).
// Cells execute on the shared worker pool — each is an independent, seeded
// simulation, so the result is deterministic and ordered regardless of
// scheduling and worker count.
func CostExperiment(cfg Config) (*CostResult, error) {
	type cellSpec struct {
		run    workloads.Run
		policy string
		unit   simtime.Duration
	}
	var specs []cellSpec
	for _, run := range catalogueRuns(cfg) {
		for _, unit := range cfg.Units {
			for _, policy := range PolicyNames {
				specs = append(specs, cellSpec{run: run, policy: policy, unit: unit})
			}
		}
	}

	cells, err := parallel.Map(len(specs), cfg.pool(), func(i int) (CostCell, error) {
		s := specs[i]
		var results []*sim.Result
		for rep := 0; rep < cfg.Reps; rep++ {
			res, err := runOnce(cfg, s.run, s.policy, s.unit, int64(rep))
			if err != nil {
				return CostCell{}, fmt.Errorf("experiments: %s/%s/u=%v rep %d: %w", s.run.Key, s.policy, s.unit, rep, err)
			}
			results = append(results, res)
		}
		return CostCell{
			RunKey:  s.run.Key,
			Display: s.run.Display,
			Policy:  s.policy,
			Unit:    s.unit,
			Summary: metrics.SummarizeRuns(results, s.unit),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &CostResult{Cells: cells}, nil
}

// runOnce executes one repetition of one setting. The workload seed is
// shared across policies and units (paired comparison on one dataset
// instance); the simulator seed is fully per-cell.
func runOnce(cfg Config, run workloads.Run, policy string, unit simtime.Duration, rep int64) (*sim.Result, error) {
	wf := run.Generate(workloadSeed(cfg.Seed, run.Key, rep))
	ctrl, err := newController(policy)
	if err != nil {
		return nil, err
	}
	simCfg := cfg.simConfig(unit, simSeed(cfg.Seed, run.Key, policy, unit, rep))
	if policy == "full-site" {
		simCfg.InitialInstances = cfg.MaxInstances
	}
	return sim.Run(wf, ctrl, simCfg)
}

// cellsFor returns the cells of one run in (unit, policy) order.
func (r *CostResult) cellsFor(runKey string) []CostCell {
	var out []CostCell
	for _, c := range r.Cells {
		if c.RunKey == runKey {
			out = append(out, c)
		}
	}
	return out
}

// RunKeys lists the run keys present in the result, in insertion order.
func (r *CostResult) RunKeys() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range r.Cells {
		if !seen[c.RunKey] {
			seen[c.RunKey] = true
			out = append(out, c.RunKey)
		}
	}
	return out
}

// Cell looks up one grid cell.
func (r *CostResult) Cell(runKey, policy string, unit simtime.Duration) (CostCell, bool) {
	for _, c := range r.Cells {
		if c.RunKey == runKey && c.Policy == policy && c.Unit == unit {
			return c, true
		}
	}
	return CostCell{}, false
}

// Figure5Report renders resource cost (charging units, mean ± std) per run.
func (r *CostResult) Figure5Report() *report.Table {
	t := &report.Table{
		Title:   "Figure 5 — resource cost (charging units, mean ± std)",
		Headers: []string{"run", "unit", "full-site", "pure-reactive", "reactive-conserving", "wire"},
	}
	for _, key := range r.RunKeys() {
		cells := r.cellsFor(key)
		units := uniqueUnits(cells)
		for _, u := range units {
			row := []any{cells[0].Display, simtime.FormatDuration(u)}
			for _, p := range PolicyNames {
				if c, ok := r.Cell(key, p, u); ok {
					row = append(row, report.MeanStd(c.Summary.CostMean, c.Summary.CostStd, 1))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Figure6Report renders relative execution time (each run's settings
// normalized to its fastest setting, as in §IV-E).
func (r *CostResult) Figure6Report() *report.Table {
	t := &report.Table{
		Title:   "Figure 6 — relative execution time (vs best setting of the run)",
		Headers: []string{"run", "unit", "full-site", "pure-reactive", "reactive-conserving", "wire"},
	}
	for _, key := range r.RunKeys() {
		cells := r.cellsFor(key)
		best := 0.0
		for _, c := range cells {
			if best == 0 || c.Summary.MakespanMean < best {
				best = c.Summary.MakespanMean
			}
		}
		for _, u := range uniqueUnits(cells) {
			row := []any{cells[0].Display, simtime.FormatDuration(u)}
			for _, p := range PolicyNames {
				if c, ok := r.Cell(key, p, u); ok && best > 0 {
					row = append(row, report.Ratio(c.Summary.MakespanMean/best))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Headline summarizes the paper's §IV-E claims for EXPERIMENTS.md: the
// range of other-policy cost over wire cost, the full-site/wire cost ratio
// range, wire's slowdown vs the per-run best, and the fraction of wire
// settings within 2x of the best execution time.
type Headline struct {
	OtherOverWireCostLo float64
	OtherOverWireCostHi float64
	FullSiteOverWireLo  float64
	FullSiteOverWireHi  float64
	WireSlowdownLo      float64
	WireSlowdownHi      float64
	WireWithin2x        float64 // fraction of wire settings
	WireCheapestShare   float64 // fraction of (run, unit) cells where wire is cheapest
}

// Headline computes the summary statistics.
func (r *CostResult) Headline() Headline {
	h := Headline{}
	first := true
	firstFS := true
	firstSlow := true
	wireCells, wireWithin := 0, 0
	cheapCells, cheapWire := 0, 0
	for _, key := range r.RunKeys() {
		cells := r.cellsFor(key)
		best := 0.0
		for _, c := range cells {
			if best == 0 || c.Summary.MakespanMean < best {
				best = c.Summary.MakespanMean
			}
		}
		for _, u := range uniqueUnits(cells) {
			wire, ok := r.Cell(key, "wire", u)
			if !ok || wire.Summary.CostMean == 0 {
				continue
			}
			cheapCells++
			cheapest := true
			for _, p := range PolicyNames {
				c, ok := r.Cell(key, p, u)
				if !ok {
					continue
				}
				if p != "wire" {
					ratio := c.Summary.CostMean / wire.Summary.CostMean
					if first || ratio < h.OtherOverWireCostLo {
						h.OtherOverWireCostLo = ratio
					}
					if first || ratio > h.OtherOverWireCostHi {
						h.OtherOverWireCostHi = ratio
					}
					first = false
					if c.Summary.CostMean < wire.Summary.CostMean {
						cheapest = false
					}
				}
				if p == "full-site" {
					ratio := c.Summary.CostMean / wire.Summary.CostMean
					if firstFS || ratio < h.FullSiteOverWireLo {
						h.FullSiteOverWireLo = ratio
					}
					if firstFS || ratio > h.FullSiteOverWireHi {
						h.FullSiteOverWireHi = ratio
					}
					firstFS = false
				}
			}
			if cheapest {
				cheapWire++
			}
			if best > 0 {
				slow := wire.Summary.MakespanMean / best
				if firstSlow || slow < h.WireSlowdownLo {
					h.WireSlowdownLo = slow
				}
				if firstSlow || slow > h.WireSlowdownHi {
					h.WireSlowdownHi = slow
				}
				firstSlow = false
				wireCells++
				if slow <= 2 {
					wireWithin++
				}
			}
		}
	}
	if wireCells > 0 {
		h.WireWithin2x = float64(wireWithin) / float64(wireCells)
	}
	if cheapCells > 0 {
		h.WireCheapestShare = float64(cheapWire) / float64(cheapCells)
	}
	return h
}

func uniqueUnits(cells []CostCell) []simtime.Duration {
	seen := map[simtime.Duration]bool{}
	var out []simtime.Duration
	for _, c := range cells {
		if !seen[c.Unit] {
			seen[c.Unit] = true
			out = append(out, c.Unit)
		}
	}
	return out
}
