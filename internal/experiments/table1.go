package experiments

import (
	"repro/internal/dag"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Table1Row characterizes one generated run next to the paper's Table I.
type Table1Row struct {
	Run       workloads.Run
	Tasks     int
	Stages    int
	WidthLo   int
	WidthHi   int
	AggHours  float64
	MeanLo    float64
	MeanHi    float64
	PaperAgg  float64
	PaperLo   float64
	PaperHi   float64
	PaperTask int
}

// Table1 generates the catalogue and characterizes each run (experiment
// E1), one pool cell per run.
func Table1(cfg Config) []Table1Row {
	runs := catalogueRuns(cfg)
	return parallel.Collect(len(runs), cfg.pool(), func(i int) Table1Row {
		run := runs[i]
		wf := run.Generate(workloadSeed(cfg.Seed, run.Key, 0))
		widths := wf.StageWidths()
		wLo, wHi := widths[0], widths[0]
		for _, w := range widths {
			if w < wLo {
				wLo = w
			}
			if w > wHi {
				wHi = w
			}
		}
		var means []float64
		for sid := range wf.Stages {
			means = append(means, wf.StageMeanExecTime(dag.StageID(sid)))
		}
		mLo, _ := stats.Min(means)
		mHi, _ := stats.Max(means)
		return Table1Row{
			Run:       run,
			Tasks:     wf.NumTasks(),
			Stages:    wf.NumStages(),
			WidthLo:   wLo,
			WidthHi:   wHi,
			AggHours:  wf.AggregateExecTime() / simtime.Hour,
			MeanLo:    mLo,
			MeanHi:    mHi,
			PaperAgg:  run.Paper.AggHours,
			PaperLo:   run.Paper.MeanLo,
			PaperHi:   run.Paper.MeanHi,
			PaperTask: run.Paper.Tasks,
		}
	})
}

// Table1Report renders the paper-vs-generated comparison.
func Table1Report(rows []Table1Row) *report.Table {
	t := &report.Table{
		Title: "Table I — workflow characterization (generated vs paper)",
		Headers: []string{
			"run", "framework", "tasks", "tasks(paper)", "stages",
			"width", "width(paper)", "agg(h)", "agg(paper,h)",
			"stage-mean(s)", "stage-mean(paper,s)",
		},
	}
	for _, r := range rows {
		t.AddRow(
			r.Run.Display, r.Run.Framework,
			r.Tasks, r.PaperTask, r.Stages,
			rangeStr(float64(r.WidthLo), float64(r.WidthHi), 0),
			rangeStr(float64(r.Run.Paper.WidthLo), float64(r.Run.Paper.WidthHi), 0),
			report.F(r.AggHours, 3), report.F(r.PaperAgg, 3),
			rangeStr(r.MeanLo, r.MeanHi, 2),
			rangeStr(r.PaperLo, r.PaperHi, 2),
		)
	}
	return t
}

func rangeStr(lo, hi float64, prec int) string {
	return report.F(lo, prec) + "-" + report.F(hi, prec)
}

// catalogueRuns applies the RunKeys filter.
func catalogueRuns(cfg Config) []workloads.Run {
	all := workloads.Catalog()
	if len(cfg.RunKeys) == 0 {
		return all
	}
	var out []workloads.Run
	for _, key := range cfg.RunKeys {
		if r, ok := workloads.ByKey(key); ok {
			out = append(out, r)
		}
	}
	return out
}
