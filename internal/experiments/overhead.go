package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// OverheadRow reports the controller cost of one wire run (§IV-F): real CPU
// time spent inside the MAPE loop relative to the workload's aggregate task
// execution time, plus the size of the controller's retained state.
type OverheadRow struct {
	RunKey   string
	Display  string
	Unit     simtime.Duration
	AggExec  simtime.Duration // aggregate task execution time (Table I metric)
	Wall     time.Duration    // total time inside Plan
	Iters    int
	Fraction float64 // Wall / AggExec
	// StateBytes approximates the controller's retained state: the
	// per-task prediction wavefront plus per-stage model coefficients.
	StateBytes int
}

// OverheadExperiment measures the wire controller across all catalogued
// runs and charging units (experiment E7).
func OverheadExperiment(cfg Config) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, run := range catalogueRuns(cfg) {
		for _, unit := range cfg.Units {
			wf := run.Generate(cfg.Seed)
			ctrl := core.New(core.Config{})
			res, err := sim.Run(wf, ctrl, cfg.simConfig(unit, cfg.Seed))
			if err != nil {
				return nil, fmt.Errorf("experiments: overhead %s/u=%v: %w", run.Key, unit, err)
			}
			agg := wf.AggregateExecTime()
			frac := 0.0
			if agg > 0 {
				frac = res.ControllerWall.Seconds() / agg
			}
			// Prediction wavefront entries dominate retained state;
			// each holds a Prediction (~48 B) plus map overhead
			// (~48 B), and each stage keeps two OGD coefficients,
			// a scale, and cached medians (~64 B).
			state := len(ctrl.PreStartPredictions())*96 + wf.NumStages()*64
			rows = append(rows, OverheadRow{
				RunKey:     run.Key,
				Display:    run.Display,
				Unit:       unit,
				AggExec:    agg,
				Wall:       res.ControllerWall,
				Iters:      ctrl.Iterations(),
				Fraction:   frac,
				StateBytes: state,
			})
		}
	}
	return rows, nil
}

// OverheadReport renders the §IV-F table.
func OverheadReport(rows []OverheadRow) *report.Table {
	t := &report.Table{
		Title:   "§IV-F — WIRE controller overhead",
		Headers: []string{"run", "unit", "MAPE iters", "controller wall", "agg exec", "wall/agg", "state"},
	}
	for _, r := range rows {
		t.AddRow(
			r.Display, simtime.FormatDuration(r.Unit), r.Iters,
			r.Wall.Round(time.Microsecond).String(),
			simtime.FormatDuration(r.AggExec),
			report.F(r.Fraction*100, 4)+"%",
			fmt.Sprintf("%.1fKB", float64(r.StateBytes)/1024),
		)
	}
	return t
}
