package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// OverheadRow reports the controller cost of one wire run (§IV-F): real CPU
// time spent inside the MAPE loop relative to the workload's aggregate task
// execution time, plus the size of the controller's retained state.
type OverheadRow struct {
	RunKey   string
	Display  string
	Unit     simtime.Duration
	AggExec  simtime.Duration // aggregate task execution time (Table I metric)
	Wall     time.Duration    // total time inside Plan
	Iters    int
	Fraction float64 // Wall / AggExec
	// StateBytes approximates the controller's retained state: the
	// per-task prediction wavefront plus per-stage model coefficients.
	StateBytes int
}

// OverheadExperiment measures the wire controller across all catalogued
// runs and charging units (experiment E7) on the shared worker pool. The
// wall-clock fraction is real CPU time inside Plan, so concurrent cells
// contend for cores; the measured fraction stays a valid upper bound
// (§IV-F reports orders of magnitude of headroom), and the structural
// columns are deterministic.
func OverheadExperiment(cfg Config) ([]OverheadRow, error) {
	runs := catalogueRuns(cfg)
	type cellSpec struct {
		run  workloads.Run
		unit simtime.Duration
	}
	var specs []cellSpec
	for _, run := range runs {
		for _, unit := range cfg.Units {
			specs = append(specs, cellSpec{run: run, unit: unit})
		}
	}
	return parallel.Map(len(specs), cfg.pool(), func(i int) (OverheadRow, error) {
		s := specs[i]
		wf := s.run.Generate(workloadSeed(cfg.Seed, s.run.Key, 0))
		ctrl := core.New(core.Config{})
		res, err := sim.Run(wf, ctrl, cfg.simConfig(s.unit, simSeed(cfg.Seed, s.run.Key, "wire", s.unit, 0)))
		if err != nil {
			return OverheadRow{}, fmt.Errorf("experiments: overhead %s/u=%v: %w", s.run.Key, s.unit, err)
		}
		agg := wf.AggregateExecTime()
		frac := 0.0
		if agg > 0 {
			frac = res.ControllerWall.Seconds() / agg
		}
		// Prediction wavefront entries dominate retained state;
		// each holds a Prediction (~48 B) plus map overhead
		// (~48 B), and each stage keeps two OGD coefficients,
		// a scale, and cached medians (~64 B).
		state := len(ctrl.PreStartPredictions())*96 + wf.NumStages()*64
		return OverheadRow{
			RunKey:     s.run.Key,
			Display:    s.run.Display,
			Unit:       s.unit,
			AggExec:    agg,
			Wall:       res.ControllerWall,
			Iters:      ctrl.Iterations(),
			Fraction:   frac,
			StateBytes: state,
		}, nil
	})
}

// OverheadReport renders the §IV-F table. The wall columns are measured
// real CPU time — the one output of the suite that is not reproducible
// byte-for-byte across invocations.
func OverheadReport(rows []OverheadRow) *report.Table {
	t := &report.Table{
		Title:   "§IV-F — WIRE controller overhead (wall columns are measured, not simulated)",
		Headers: []string{"run", "unit", "MAPE iters", "controller wall", "agg exec", "wall/agg", "state"},
	}
	for _, r := range rows {
		t.AddRow(
			r.Display, simtime.FormatDuration(r.Unit), r.Iters,
			r.Wall.Round(time.Microsecond).String(),
			simtime.FormatDuration(r.AggExec),
			report.F(r.Fraction*100, 4)+"%",
			fmt.Sprintf("%.1fKB", float64(r.StateBytes)/1024),
		)
	}
	return t
}
