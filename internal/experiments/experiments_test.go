package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// tiny returns a config that keeps test runtimes small.
func tiny() Config {
	cfg := Defaults()
	cfg.Reps = 1
	cfg.Orders = 1
	cfg.Units = []simtime.Duration{1 * simtime.Minute}
	cfg.RunKeys = []string{"tpch6-s"}
	cfg.LinearNs = []int{10}
	cfg.LinearRatios = []float64{2, 5}
	return cfg
}

func TestTable1(t *testing.T) {
	rows := Table1(Defaults())
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Tasks != r.PaperTask {
			t.Errorf("%s: tasks %d != paper %d", r.Run.Key, r.Tasks, r.PaperTask)
		}
		if r.Stages != r.Run.Paper.Stages {
			t.Errorf("%s: stages %d != paper %d", r.Run.Key, r.Stages, r.Run.Paper.Stages)
		}
	}
	tbl := Table1Report(rows)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Genome S", "PageRank L", "405", "4005"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table missing %q", want)
		}
	}
}

func TestLinearFigure2Shape(t *testing.T) {
	// R > U: cost and time ratios must be bounded and must approach 1 as
	// R/U grows (the Figure 2 claims).
	near, err := LinearPointRun(10, 2, RGreaterU)
	if err != nil {
		t.Fatal(err)
	}
	far, err := LinearPointRun(10, 100, RGreaterU)
	if err != nil {
		t.Fatal(err)
	}
	if near.CostRatio < 1-1e-9 || near.CostRatio > 1.7 {
		t.Fatalf("cost ratio at R/U=2: %v", near.CostRatio)
	}
	if near.TimeRatio < 1-1e-9 || near.TimeRatio > 2.2 {
		t.Fatalf("time ratio at R/U=2: %v", near.TimeRatio)
	}
	if far.CostRatio > 1.05 || far.TimeRatio > 1.1 {
		t.Fatalf("far regime not near-optimal: cost=%v time=%v", far.CostRatio, far.TimeRatio)
	}
	if far.CostRatio > near.CostRatio || far.TimeRatio > near.TimeRatio {
		t.Fatal("ratios did not improve with R/U")
	}
	if near.Restarts != 0 || far.Restarts != 0 {
		t.Fatalf("restarts: %d/%d", near.Restarts, far.Restarts)
	}
}

func TestLinearFigure3WideDeviation(t *testing.T) {
	// R <= U with U/R large: elasticity cannot help; the algorithm runs
	// nearly sequentially (time ~ N) and cost deviates once U exceeds
	// the total work (Figure 3's wide-deviation claim).
	pt, err := LinearPointRun(10, 100, RLessEqualU)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TimeRatio < 5 {
		t.Fatalf("time ratio = %v, want near-sequential (~10)", pt.TimeRatio)
	}
	// Total work NR = 600s fits in one U=6000s unit: cost = 1 unit, while
	// the optimum NR/U = 0.1 -> ratio 10.
	if pt.CostRatio < 5 {
		t.Fatalf("cost ratio = %v, want ~10", pt.CostRatio)
	}
	if pt.PeakPool != 1 {
		t.Fatalf("peak pool = %d, want 1", pt.PeakPool)
	}
}

func TestLinearSection3EWorkedExample(t *testing.T) {
	// P=1, R = U - eps (§III-E): all instances fully utilized, cost near
	// the optimum N units, completion within ~2R... the batch-growth
	// discretization lands slightly above; assert the paper's
	// qualitative claims with tolerance.
	pt, err := LinearPointRun(20, 0.98, RLessEqualU)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CostRatio > 1.8 {
		t.Fatalf("cost ratio = %v, want near 1", pt.CostRatio)
	}
	if pt.TimeRatio > 3.5 {
		t.Fatalf("time ratio = %v, want within a small factor of 2", pt.TimeRatio)
	}
}

func TestLinearSweepAndReport(t *testing.T) {
	cfg := tiny()
	pts, err := LinearSweep(cfg, RGreaterU)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cfg.LinearNs)*len(cfg.LinearRatios) {
		t.Fatalf("points = %d", len(pts))
	}
	var sb strings.Builder
	if err := LinearReport(pts).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "R > U") {
		t.Fatal("report title wrong")
	}
	var sb3 strings.Builder
	pts3, err := LinearSweep(cfg, RLessEqualU)
	if err != nil {
		t.Fatal(err)
	}
	if err := LinearReport(pts3).Render(&sb3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb3.String(), "R <= U") {
		t.Fatal("fig3 report title wrong")
	}
}

func TestCostExperimentGrid(t *testing.T) {
	cfg := tiny()
	res, err := CostExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(PolicyNames) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	full, ok := res.Cell("tpch6-s", "full-site", 60)
	if !ok {
		t.Fatal("full-site cell missing")
	}
	w, ok := res.Cell("tpch6-s", "wire", 60)
	if !ok {
		t.Fatal("wire cell missing")
	}
	// Full-site rents 12 instances for the whole run; wire must be far
	// cheaper on this short workflow.
	if w.Summary.CostMean >= full.Summary.CostMean {
		t.Fatalf("wire %v >= full-site %v", w.Summary.CostMean, full.Summary.CostMean)
	}
	// Full-site is the fastest setting.
	if full.Summary.MakespanMean > w.Summary.MakespanMean {
		t.Fatalf("full-site slower than wire: %v vs %v", full.Summary.MakespanMean, w.Summary.MakespanMean)
	}
	for _, rep := range []func() *strings.Builder{
		func() *strings.Builder { var sb strings.Builder; _ = res.Figure5Report().Render(&sb); return &sb },
		func() *strings.Builder { var sb strings.Builder; _ = res.Figure6Report().Render(&sb); return &sb },
	} {
		if out := rep().String(); !strings.Contains(out, "TPCH-6 S") {
			t.Fatalf("report missing run row:\n%s", out)
		}
	}
	h := res.Headline()
	if h.FullSiteOverWireHi < 1 {
		t.Fatalf("headline full-site ratio = %+v", h)
	}
	if h.WireSlowdownLo < 1-1e-9 {
		t.Fatalf("wire slowdown below 1: %+v", h)
	}
}

func TestPredictionExperiment(t *testing.T) {
	cfg := tiny()
	runs, err := PredictionExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	pr := runs[0]
	// TPCH-6 S: one 32-task stage -> 31 predictions per order.
	if len(pr.Samples) != 31 {
		t.Fatalf("samples = %d, want 31", len(pr.Samples))
	}
	short, ok := pr.Summaries[metrics.ShortStage]
	if !ok {
		t.Fatalf("no short-stage summary: %+v", pr.Summaries)
	}
	// The generator's unexplained noise is small; grouped predictions
	// must mostly land within a second (§IV-D's headline).
	if short.FracWithin1s < 0.5 {
		t.Fatalf("short-stage accuracy too low: %+v", short)
	}
	var sb strings.Builder
	if err := PredictionReport(runs).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TPCH-6 S") {
		t.Fatal("prediction report missing run")
	}
}

func TestReplayStageExactGroups(t *testing.T) {
	// All tasks share one input size and one observed time: every
	// prediction after the first completion must be exact.
	b := dag.NewBuilder("exact")
	st := b.AddStage("s")
	for i := 0; i < 6; i++ {
		b.AddTask(st, "t", 10, 0, 100)
	}
	wf := b.MustBuild()
	observed := map[dag.TaskID]float64{}
	for i := 0; i < 6; i++ {
		observed[dag.TaskID(i)] = 10
	}
	rng := rand.New(rand.NewSource(1))
	samples := replayStages(wf, observed, rng)
	if len(samples) != 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if s.TrueError() != 0 {
			t.Fatalf("expected exact prediction, got %+v", s)
		}
	}
}

func TestOverheadExperiment(t *testing.T) {
	cfg := tiny()
	rows, err := OverheadExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Iters <= 0 || r.Wall <= 0 {
		t.Fatalf("row = %+v", r)
	}
	// The paper reports 0.011%-0.49% controller overhead; the pure-Go
	// controller must stay well under a generous 5% of aggregate task
	// time.
	if r.Fraction > 0.05 {
		t.Fatalf("overhead fraction = %v", r.Fraction)
	}
	if r.StateBytes <= 0 {
		t.Fatal("state estimate missing")
	}
	var sb strings.Builder
	if err := OverheadReport(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TPCH-6 S") {
		t.Fatal("overhead report missing run")
	}
}

func TestQuickAndDefaultConfigs(t *testing.T) {
	d := Defaults()
	if len(d.Units) != 4 || d.Reps != 3 || d.Orders != 5 {
		t.Fatalf("defaults = %+v", d)
	}
	q := Quick()
	if len(q.RunKeys) == 0 || q.Reps >= d.Reps {
		t.Fatalf("quick = %+v", q)
	}
	if _, ok := workloads.ByKey(q.RunKeys[0]); !ok {
		t.Fatal("quick run key unknown")
	}
}

func TestCatalogueRunsFilter(t *testing.T) {
	cfg := Defaults()
	cfg.RunKeys = []string{"genome-l", "bogus", "tpch1-s"}
	runs := catalogueRuns(cfg)
	if len(runs) != 2 || runs[0].Key != "genome-l" || runs[1].Key != "tpch1-s" {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestAblationExperiment(t *testing.T) {
	cfg := Defaults()
	cfg.Orders = 1
	rows, err := AblationExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byStudy := map[string][]AblationRow{}
	for _, r := range rows {
		byStudy[r.Study] = append(byStudy[r.Study], r)
	}
	for _, study := range []string{"util-target", "first-five", "restart-frac", "charge-origin", "ogd-epochs"} {
		if len(byStudy[study]) < 2 {
			t.Fatalf("study %s has %d rows", study, len(byStudy[study]))
		}
	}
	// Lower utilization targets must not slow the run down.
	ut := byStudy["util-target"]
	if ut[len(ut)-1].Makespan >= ut[0].Makespan {
		t.Fatalf("theta=0.4 makespan %v not below theta=1.0 %v", ut[len(ut)-1].Makespan, ut[0].Makespan)
	}
	// Billing from the launch request can only cost more.
	co := byStudy["charge-origin"]
	if co[1].Cost < co[0].Cost {
		t.Fatalf("charge-from-request cheaper: %+v", co)
	}
	var sb strings.Builder
	if err := AblationReport(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "util-target") {
		t.Fatal("ablation report missing study")
	}
}

func TestUtilizationTargetTradesCostForSpeed(t *testing.T) {
	// The §IV-A aggressiveness knob: on Genome L at u=30m, theta=0.4 must
	// be materially faster than the default.
	run, _ := workloads.ByKey("genome-l")
	wf := run.Generate(1)
	cfg := Defaults()
	base, err := simRunWire(cfg, wf, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := simRunWireTarget(cfg, wf, 0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= base.Makespan*0.8 {
		t.Fatalf("theta=0.4 makespan %v vs default %v", fast.Makespan, base.Makespan)
	}
}

// simRunWire / simRunWireTarget are test helpers running one wire execution
// at u = 30 min.
func simRunWire(cfg Config, wf *dag.Workflow, rep int64) (*sim.Result, error) {
	return sim.Run(wf, core.New(core.Config{}), cfg.simConfig(30*simtime.Minute, cfg.Seed+rep))
}

func simRunWireTarget(cfg Config, wf *dag.Workflow, rep int64, theta float64) (*sim.Result, error) {
	ctrl := core.New(core.Config{UtilizationTarget: theta})
	return sim.Run(wf, ctrl, cfg.simConfig(30*simtime.Minute, cfg.Seed+rep))
}

func TestCostExperimentParallelDeterministic(t *testing.T) {
	cfg := tiny()
	cfg.RunKeys = []string{"tpch6-s", "pagerank-s"}
	cfg.Units = []simtime.Duration{1 * simtime.Minute, 30 * simtime.Minute}
	a, err := CostExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CostExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("cell counts differ")
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.RunKey != cb.RunKey || ca.Policy != cb.Policy || ca.Unit != cb.Unit {
			t.Fatalf("cell order differs at %d: %+v vs %+v", i, ca, cb)
		}
		if ca.Summary.CostMean != cb.Summary.CostMean || ca.Summary.MakespanMean != cb.Summary.MakespanMean {
			t.Fatalf("cell %d nondeterministic", i)
		}
	}
}

func TestLinearCharts(t *testing.T) {
	pts, err := LinearSweep(tiny(), RGreaterU)
	if err != nil {
		t.Fatal(err)
	}
	cost, tm := LinearCharts(pts)
	var sb strings.Builder
	if err := cost.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "resource usage") {
		t.Fatal("cost chart title wrong")
	}
	sb.Reset()
	if err := tm.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "completion time") {
		t.Fatal("time chart title wrong")
	}
}

func TestPredictionCharts(t *testing.T) {
	runs, err := PredictionExperiment(tiny())
	if err != nil {
		t.Fatal(err)
	}
	charts := PredictionCharts(runs)
	if len(charts) == 0 {
		t.Fatal("no prediction charts")
	}
	var sb strings.Builder
	if err := charts[0].WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Fatal("chart title wrong")
	}
}

func TestCostCharts(t *testing.T) {
	res, err := CostExperiment(tiny())
	if err != nil {
		t.Fatal(err)
	}
	c5, c6 := CostCharts(res, "tpch6-s")
	if c5 == nil || c6 == nil {
		t.Fatal("nil charts")
	}
	var sb strings.Builder
	if err := c5.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TPCH-6 S") {
		t.Fatal("bar chart missing run name")
	}
	if a, b := CostCharts(res, "bogus"); a != nil || b != nil {
		t.Fatal("unknown run should give nil charts")
	}
}

func TestWriteFigureSVGs(t *testing.T) {
	dir := t.TempDir()
	files, err := WriteFigureSVGs(tiny(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("files = %v", files)
	}
}

func TestHistoryExperiment(t *testing.T) {
	cfg := tiny()
	cfg.RunKeys = []string{"pagerank-s"}
	rows, err := HistoryExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 drifts x 2 policies
		t.Fatalf("rows = %d", len(rows))
	}
	// At maximum drift, the history-based estimate error must exceed
	// wire's (Observation 2).
	var histErr, wireErr float64
	for _, r := range rows {
		if r.Drift != 2.5 {
			continue
		}
		if r.Policy == "history-based" {
			histErr = r.MeanAbsErr
		} else {
			wireErr = r.MeanAbsErr
		}
	}
	if histErr <= wireErr {
		t.Fatalf("history err %v <= wire err %v at drift 2.5", histErr, wireErr)
	}
	var sb strings.Builder
	if err := HistoryReport(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "history-based") {
		t.Fatal("report missing policy")
	}
}
