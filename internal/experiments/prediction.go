package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// PredictionRun is the Figure 4 result for one catalogued run: prediction
// errors of the completed-data policies (3, 4 and 5, §IV-D) across
// repetitions and random task orders, bucketed by stage class.
type PredictionRun struct {
	RunKey    string
	Display   string
	Samples   []metrics.ErrorSample
	Summaries map[metrics.StageClass]metrics.ErrorSummary
}

// PredictionExperiment reproduces the §IV-D study. For every catalogued run
// it executes Reps wire runs on the simulated site to obtain observed task
// execution times (with interference), then for each stage with at least
// two tasks replays Orders random task orders through the online predictor:
// task k in the order is predicted from the first k completed peers exactly
// as Policies 3/4/5 would at runtime, and the error against the observed
// execution time is recorded.
func PredictionExperiment(cfg Config) ([]PredictionRun, error) {
	runs := catalogueRuns(cfg)
	type repSpec struct {
		run workloads.Run
		rep int64
	}
	var specs []repSpec
	for _, run := range runs {
		for rep := 0; rep < cfg.Reps; rep++ {
			specs = append(specs, repSpec{run: run, rep: int64(rep)})
		}
	}

	// One grid cell per (run, rep): the observation sim dominates, the
	// Orders replays of its output are cheap and stay with their cell.
	samples, err := parallel.Map(len(specs), cfg.pool(), func(i int) ([]metrics.ErrorSample, error) {
		s := specs[i]
		wf := s.run.Generate(workloadSeed(cfg.Seed, s.run.Key, s.rep))
		observed, err := observeRun(cfg, wf, s.run.Key, s.rep)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 %s rep=%d: %w", s.run.Key, s.rep, err)
		}
		var out []metrics.ErrorSample
		for ord := 0; ord < cfg.Orders; ord++ {
			rng := newOrderRNG(cfg.Seed, s.run.Key, s.rep, int64(ord))
			out = append(out, replayStages(wf, observed, rng)...)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	var out []PredictionRun
	i := 0
	for _, run := range runs {
		pr := PredictionRun{RunKey: run.Key, Display: run.Display}
		for rep := 0; rep < cfg.Reps; rep++ {
			pr.Samples = append(pr.Samples, samples[i]...)
			i++
		}
		pr.Summaries = metrics.Summarize(pr.Samples)
		out = append(out, pr)
	}
	return out, nil
}

// observeRun executes the workflow under WIRE once and returns the observed
// execution time per task.
func observeRun(cfg Config, wf *dag.Workflow, runKey string, rep int64) (map[dag.TaskID]float64, error) {
	// A 15 min charging unit; prediction inputs are the observed task
	// times, which billing does not affect.
	simCfg := cfg.simConfig(15*simtime.Minute, simSeed(cfg.Seed, runKey, "wire", 15*simtime.Minute, rep))
	res, err := sim.Run(wf, core.New(core.Config{}), simCfg)
	if err != nil {
		return nil, err
	}
	obs := make(map[dag.TaskID]float64, len(res.TaskRuns))
	for _, tr := range res.TaskRuns {
		obs[tr.Task] = tr.ObservedExec
	}
	return obs, nil
}

// newOrderRNG seeds the task-order shuffler for one (run, rep, order) cell.
func newOrderRNG(seed int64, runKey string, rep, ord int64) *rand.Rand {
	return rand.New(rand.NewSource(orderSeed(seed, runKey, rep, ord)))
}

// shuffledStage returns a random permutation of a stage's tasks.
func shuffledStage(tasks []dag.TaskID, rng *rand.Rand) []dag.TaskID {
	order := append([]dag.TaskID(nil), tasks...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// replayStages runs the per-stage task-order replay over all stages with at
// least two tasks and returns the prediction-error samples.
func replayStages(wf *dag.Workflow, observed map[dag.TaskID]float64, rng *rand.Rand) []metrics.ErrorSample {
	var out []metrics.ErrorSample
	for _, st := range wf.Stages {
		if len(st.Tasks) < 2 {
			continue
		}
		out = append(out, replayStageWith(wf, st, shuffledStage(st.Tasks, rng), observed, predict.Config{})...)
	}
	return out
}

// replayStageWith feeds completions to a fresh predictor one task at a time
// (in the given order) and records, for each task after the first, the
// Policy 3/4/5 estimate it would have received as a ready task.
func replayStageWith(wf *dag.Workflow, st *dag.Stage, order []dag.TaskID, observed map[dag.TaskID]float64, pcfg predict.Config) []metrics.ErrorSample {
	pred := predict.New(pcfg)
	snap := &monitor.Snapshot{
		Now:      0,
		Interval: 1,
		Workflow: wf,
		Tasks:    make([]monitor.TaskRecord, wf.NumTasks()),
	}
	for _, t := range wf.Tasks {
		snap.Tasks[t.ID] = monitor.TaskRecord{
			ID: t.ID, Stage: t.Stage, State: monitor.Blocked, InputSize: t.InputSize,
		}
	}

	// Stage class from all observed times of the stage (as in §IV-D).
	execs := make([]float64, 0, len(st.Tasks))
	for _, tid := range st.Tasks {
		execs = append(execs, observed[tid])
	}
	stMean, _ := stats.Mean(execs)
	stClass := metrics.Classify(stMean)

	var out []metrics.ErrorSample
	for k, tid := range order {
		if k > 0 {
			// Predict task k as ready-to-run from the first k
			// completions (Policy 4 or 5; Policy 3 when every peer
			// shares one input size, where it coincides with 4).
			snap.Tasks[tid].State = monitor.Ready
			snap.Now = float64(k)
			pred.Update(snap)
			est, pol := pred.EstimateExec(snap, tid)
			switch pol {
			case predict.PolicyCompletedMedian, predict.PolicyGroupMedian, predict.PolicyOGD:
				out = append(out, metrics.ErrorSample{
					Task:      tid,
					Stage:     st.ID,
					Class:     stClass,
					Predicted: est,
					Actual:    observed[tid],
				})
			}
		}
		// Complete the task with its observed execution time.
		rec := &snap.Tasks[tid]
		rec.State = monitor.Completed
		rec.ExecTime = observed[tid]
		rec.CompletedAt = float64(k + 1)
		rec.TransferObserved = true
	}
	return out
}

// PredictionReport renders the Figure 4 summaries: per run and stage class,
// sample counts, headline accuracy numbers, and an ASCII CDF sketch of the
// error distribution.
func PredictionReport(runs []PredictionRun) *report.Table {
	t := &report.Table{
		Title: "Figure 4 — task-prediction error by stage class " +
			"(true error for short/medium, relative for long; CDF over [-10s,10s] / [-1,1])",
		Headers: []string{"run", "class", "tasks", "mean|err|", "within", "cdf"},
	}
	for _, pr := range runs {
		for _, class := range []metrics.StageClass{metrics.ShortStage, metrics.MediumStage, metrics.LongStage} {
			s, ok := pr.Summaries[class]
			if !ok {
				continue
			}
			var meanErr, within, sketch string
			if class == metrics.LongStage {
				meanErr = report.F(s.MeanAbsRelError*100, 1) + "%"
				within = report.F(s.FracWithin15pct*100, 1) + "% <=15%"
				sketch = report.CDFSketch(s.RelErrCDF, -1, 1, 24)
			} else {
				meanErr = report.F(s.MeanAbsTrueError, 2) + "s"
				within = report.F(s.FracWithin1s*100, 1) + "% <=1s"
				sketch = report.CDFSketch(s.TrueErrCDF, -10, 10, 24)
			}
			t.AddRow(pr.Display, class.String(), s.Count, meanErr, within, sketch)
		}
	}
	return t
}
