package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/simtime"
)

// LinearCharts converts a Figure 2/3 sweep into two SVG charts (resource
// usage and completion time vs the ratio, one series per N) — the same two
// y-axes the paper's subfigures carry.
func LinearCharts(points []LinearPoint) (cost, time *plot.Chart) {
	ratioName := "R/U"
	figure := "Figure 2 (R > U)"
	if len(points) > 0 && points[0].Case == RLessEqualU {
		ratioName = "U/R"
		figure = "Figure 3 (R <= U)"
	}
	byN := map[int][]LinearPoint{}
	var ns []int
	for _, p := range points {
		if _, ok := byN[p.N]; !ok {
			ns = append(ns, p.N)
		}
		byN[p.N] = append(byN[p.N], p)
	}
	mk := func(metric string, y func(LinearPoint) float64) *plot.Chart {
		c := &plot.Chart{
			Title:  fmt.Sprintf("%s — %s vs optimal", figure, metric),
			XLabel: ratioName,
			YLabel: metric + " / optimal",
			LogX:   true,
			LogY:   true,
		}
		for _, n := range ns {
			s := plot.Series{Name: fmt.Sprintf("N=%d", n)}
			for _, p := range byN[n] {
				s.X = append(s.X, p.Ratio)
				s.Y = append(s.Y, y(p))
			}
			c.Series = append(c.Series, s)
		}
		return c
	}
	return mk("resource usage", func(p LinearPoint) float64 { return p.CostRatio }),
		mk("completion time", func(p LinearPoint) float64 { return p.TimeRatio })
}

// PredictionCharts renders the Figure 4 error CDFs: one chart per stage
// class, one curve per run.
func PredictionCharts(runs []PredictionRun) []*plot.Chart {
	var out []*plot.Chart
	for _, class := range []metrics.StageClass{metrics.ShortStage, metrics.MediumStage, metrics.LongStage} {
		c := &plot.Chart{
			Title:  fmt.Sprintf("Figure 4 — prediction error CDF, %s stages", class),
			YLabel: "P[error <= x]",
		}
		lo, hi, n := -10.0, 10.0, 80
		if class == metrics.LongStage {
			c.XLabel = "relative true error"
			lo, hi = -1, 1
		} else {
			c.XLabel = "true error (s)"
		}
		for _, pr := range runs {
			sum, ok := pr.Summaries[class]
			if !ok {
				continue
			}
			cdf := sum.TrueErrCDF
			if class == metrics.LongStage {
				cdf = sum.RelErrCDF
			}
			s := plot.Series{Name: pr.Display}
			for i := 0; i <= n; i++ {
				x := lo + (hi-lo)*float64(i)/float64(n)
				s.X = append(s.X, x)
				s.Y = append(s.Y, cdf.P(x))
			}
			c.Series = append(c.Series, s)
		}
		if len(c.Series) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// CostCharts renders Figure 5 (charging units) and Figure 6 (relative
// execution time) for one run as grouped bar charts: one group per charging
// unit, one bar per policy.
func CostCharts(res *CostResult, runKey string) (cost, relTime *plot.BarChart) {
	cells := res.cellsFor(runKey)
	if len(cells) == 0 {
		return nil, nil
	}
	display := cells[0].Display
	best := 0.0
	for _, c := range cells {
		if best == 0 || c.Summary.MakespanMean < best {
			best = c.Summary.MakespanMean
		}
	}
	cost = &plot.BarChart{
		Title:       fmt.Sprintf("Figure 5 — resource cost, %s", display),
		YLabel:      "charging units",
		SeriesNames: PolicyNames,
		LogY:        true,
	}
	relTime = &plot.BarChart{
		Title:       fmt.Sprintf("Figure 6 — relative execution time, %s", display),
		YLabel:      "time / best",
		SeriesNames: PolicyNames,
	}
	for _, u := range uniqueUnits(cells) {
		gc := plot.BarGroup{Label: simtime.FormatDuration(u)}
		gt := plot.BarGroup{Label: simtime.FormatDuration(u)}
		for _, p := range PolicyNames {
			cell, ok := res.Cell(runKey, p, u)
			if !ok {
				gc.Values = append(gc.Values, 0)
				gt.Values = append(gt.Values, 0)
				continue
			}
			gc.Values = append(gc.Values, cell.Summary.CostMean)
			if best > 0 {
				gt.Values = append(gt.Values, cell.Summary.MakespanMean/best)
			} else {
				gt.Values = append(gt.Values, 0)
			}
		}
		cost.Groups = append(cost.Groups, gc)
		relTime.Groups = append(relTime.Groups, gt)
	}
	return cost, relTime
}

// svgWriter abstracts the two chart kinds for WriteFigureSVGs.
type svgWriter interface {
	WriteSVG(io.Writer) error
}

// WriteFigureSVGs regenerates every figure and writes the SVGs into dir
// (created if missing). It returns the written file names.
func WriteFigureSVGs(cfg Config, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	save := func(name string, c svgWriter) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.WriteSVG(f); err != nil {
			return err
		}
		files = append(files, path)
		return nil
	}

	fig2, err := LinearSweep(cfg, RGreaterU)
	if err != nil {
		return nil, err
	}
	cost2, time2 := LinearCharts(fig2)
	if err := save("fig2-cost.svg", cost2); err != nil {
		return nil, err
	}
	if err := save("fig2-time.svg", time2); err != nil {
		return nil, err
	}

	fig3, err := LinearSweep(cfg, RLessEqualU)
	if err != nil {
		return nil, err
	}
	cost3, time3 := LinearCharts(fig3)
	if err := save("fig3-cost.svg", cost3); err != nil {
		return nil, err
	}
	if err := save("fig3-time.svg", time3); err != nil {
		return nil, err
	}

	preds, err := PredictionExperiment(cfg)
	if err != nil {
		return nil, err
	}
	for i, c := range PredictionCharts(preds) {
		if err := save(fmt.Sprintf("fig4-%d.svg", i+1), c); err != nil {
			return nil, err
		}
	}

	costs, err := CostExperiment(cfg)
	if err != nil {
		return nil, err
	}
	for _, key := range costs.RunKeys() {
		c5, c6 := CostCharts(costs, key)
		if c5 == nil {
			continue
		}
		if err := save(fmt.Sprintf("fig5-%s.svg", key), c5); err != nil {
			return nil, err
		}
		if err := save(fmt.Sprintf("fig6-%s.svg", key), c6); err != nil {
			return nil, err
		}
	}
	return files, nil
}
