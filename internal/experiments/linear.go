package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// LinearCase selects which half of the §IV-A study to run.
type LinearCase int

// The two simulation regimes of Figures 2 and 3.
const (
	// RGreaterU sweeps R/U (Figure 2).
	RGreaterU LinearCase = iota
	// RLessEqualU sweeps U/R (Figure 3).
	RLessEqualU
)

// String implements fmt.Stringer.
func (c LinearCase) String() string {
	if c == RGreaterU {
		return "R>U"
	}
	return "R<=U"
}

// LinearPoint is one sweep point of Figure 2 or 3.
type LinearPoint struct {
	Case  LinearCase
	N     int
	Ratio float64 // R/U for RGreaterU, U/R for RLessEqualU

	// CostRatio is the policy's resource usage over the optimum NR/U
	// (sequential execution on one always-busy instance).
	CostRatio float64
	// TimeRatio is the policy's completion time over the optimum R
	// (all N tasks in parallel).
	TimeRatio float64

	PeakPool int
	Restarts int
}

// LinearSweep runs the scaling algorithm on single-stage linear workflows
// under idealized conditions (§III-E: one slot per instance, continuous-ish
// monitoring, instantaneous control) across the configured Ns and ratios.
// Points execute on the shared worker pool; each point is a deterministic
// closed-form simulation, so ordering and values are worker-count
// independent.
func LinearSweep(cfg Config, c LinearCase) ([]LinearPoint, error) {
	type pointSpec struct {
		n     int
		ratio float64
	}
	var specs []pointSpec
	for _, n := range cfg.LinearNs {
		for _, ratio := range cfg.LinearRatios {
			specs = append(specs, pointSpec{n: n, ratio: ratio})
		}
	}
	return parallel.Map(len(specs), cfg.pool(), func(i int) (LinearPoint, error) {
		s := specs[i]
		pt, err := LinearPointRun(s.n, s.ratio, c)
		if err != nil {
			return LinearPoint{}, fmt.Errorf("experiments: linear n=%d ratio=%g: %w", s.n, s.ratio, err)
		}
		return pt, nil
	})
}

// LinearPointRun executes one (N, ratio) point of the study.
func LinearPointRun(n int, ratio float64, c LinearCase) (LinearPoint, error) {
	const base = 60.0
	var r, u float64
	if c == RGreaterU {
		u = base
		r = ratio * u
	} else {
		r = base
		u = ratio * r
	}

	wf := workloads.Linear(n, r)

	// Idealized control: zero lag (orders take effect immediately) and a
	// control period fine relative to both R and U, bounded so long
	// sweeps stay tractable. The §III-E analysis assumes continuous
	// monitoring; Algorithm 3's batch sizing makes the discretization
	// error negligible once the period is well under min(R, U).
	horizonEst := 2.5 * r
	if c == RLessEqualU {
		horizonEst = float64(n)*r + 2*u
	}
	interval := minF(r, u) / 25
	if lo := horizonEst / 1500; interval < lo {
		interval = lo
	}

	simCfg := sim.Config{
		Cloud: cloud.Config{
			SlotsPerInstance: 1,
			LagTime:          0,
			ChargingUnit:     u,
			MaxInstances:     0, // unbounded, as in the simulation study
		},
		Interval:         interval,
		InitialInstances: 1,
		MaxSimTime:       100 * horizonEst,
	}
	res, err := sim.Run(wf, core.New(core.Config{}), simCfg)
	if err != nil {
		return LinearPoint{}, err
	}
	optCost := float64(n) * r / u
	return LinearPoint{
		Case:      c,
		N:         n,
		Ratio:     ratio,
		CostRatio: float64(res.UnitsCharged) / optCost,
		TimeRatio: res.Makespan / r,
		PeakPool:  res.PeakPool,
		Restarts:  res.Restarts,
	}, nil
}

// LinearReport renders a sweep as the textual Figure 2/3.
func LinearReport(points []LinearPoint) *report.Table {
	title := "Figure 2 — resource steering vs optimal (R > U)"
	ratioName := "R/U"
	if len(points) > 0 && points[0].Case == RLessEqualU {
		title = "Figure 3 — resource steering vs optimal (R <= U)"
		ratioName = "U/R"
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"N", ratioName, "cost/optimal", "time/optimal", "peak pool", "restarts"},
	}
	for _, p := range points {
		t.AddRow(p.N, report.F(p.Ratio, 2), report.F(p.CostRatio, 3), report.F(p.TimeRatio, 3), p.PeakPool, p.Restarts)
	}
	return t
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
