// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV) on the simulated substrate:
//
//	Table I    — workflow characterization (table1.go)
//	Figure 2/3 — steering policy vs optimal on linear workflows (linear.go)
//	Figure 4   — prediction-error CDFs (prediction.go)
//	Figure 5/6 — resource cost and relative execution time (cost.go)
//	§IV-F      — controller overhead (overhead.go)
//	Ablations  — design-choice sensitivity studies (ablation.go)
//	Obs. 2     — online vs history-based steering under drift (history.go)
//
// Each driver returns structured results and can render them as text
// tables, so cmd/wire-bench, the Go benchmarks, and the tests all share one
// implementation. Grids execute on the shared internal/parallel pool
// (Config.Workers); per-cell seeds are derived in seed.go so results are
// byte-identical at any worker count.
package experiments

import (
	"repro/internal/cloud"
	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Seed drives workload generation and interference sampling.
	Seed int64
	// Reps is the number of repetitions per setting (the paper repeats
	// each run 3–7 times).
	Reps int
	// Orders is the number of random task orders for the Figure 4 study
	// (the paper uses 5).
	Orders int
	// Units are the charging units in seconds (the paper uses 1, 15, 30,
	// 60 minutes).
	Units []simtime.Duration
	// Lag is the instantiation lag and MAPE interval (~3 min on
	// ExoGENI).
	Lag simtime.Duration
	// MaxInstances and SlotsPerInstance describe the site (12 XOXLarge
	// instances with 4 slots each, §IV-B).
	MaxInstances     int
	SlotsPerInstance int
	// InterferenceSigma is the lognormal log-sigma of the per-attempt
	// occupancy noise (Observation 2); 0 disables it.
	InterferenceSigma float64
	// RunKeys restricts the workload catalogue (nil = all eight runs).
	RunKeys []string
	// LinearNs are the stage widths for Figures 2/3 (paper: 10, 100,
	// 1000).
	LinearNs []int
	// LinearRatios are the R/U (Figure 2) and U/R (Figure 3) sweep
	// points.
	LinearRatios []float64
	// Workers bounds the experiment worker pool shared by every driver
	// (0 or negative = GOMAXPROCS). Identical seeds yield identical
	// results at any worker count.
	Workers int
	// Progress, when non-nil, is called after each completed grid cell
	// with the running done count and the grid total. It may be invoked
	// concurrently from several workers.
	Progress func(done, total int)
}

// Defaults returns the paper-faithful configuration.
func Defaults() Config {
	return Config{
		Seed:              1,
		Reps:              3,
		Orders:            5,
		Units:             []simtime.Duration{1 * simtime.Minute, 15 * simtime.Minute, 30 * simtime.Minute, 60 * simtime.Minute},
		Lag:               3 * simtime.Minute,
		MaxInstances:      12,
		SlotsPerInstance:  4,
		InterferenceSigma: 0.05,
		LinearNs:          []int{10, 100, 1000},
		LinearRatios:      []float64{1, 1.5, 2, 3, 5, 10, 20, 50, 100, 200, 400, 1000},
	}
}

// Quick returns a reduced configuration for fast CI runs: fewer
// repetitions, two charging units, smaller linear sweeps, and only four of
// the eight workloads.
func Quick() Config {
	cfg := Defaults()
	cfg.Reps = 2
	cfg.Orders = 2
	cfg.Units = []simtime.Duration{1 * simtime.Minute, 30 * simtime.Minute}
	cfg.RunKeys = []string{"genome-s", "tpch1-s", "tpch6-s", "pagerank-s"}
	cfg.LinearNs = []int{10, 100}
	cfg.LinearRatios = []float64{1, 2, 5, 10, 50, 100}
	return cfg
}

// pool returns the shared grid-executor configuration.
func (c Config) pool() parallel.Config {
	return parallel.Config{Workers: c.Workers, OnProgress: c.Progress}
}

// site returns the cloud configuration for one charging unit.
func (c Config) site(unit simtime.Duration) cloud.Config {
	return cloud.Config{
		SlotsPerInstance: c.SlotsPerInstance,
		LagTime:          c.Lag,
		ChargingUnit:     unit,
		MaxInstances:     c.MaxInstances,
	}
}

// simConfig returns the execution-simulator configuration for one charging
// unit and seed.
func (c Config) simConfig(unit simtime.Duration, seed int64) sim.Config {
	sc := sim.Config{
		Cloud: c.site(unit),
		Seed:  seed,
	}
	if c.InterferenceSigma > 0 {
		sc.Interference = dist.NewLognormalFromMean(1, c.InterferenceSigma)
	}
	return sc
}
