package experiments

import (
	"fmt"
	"testing"
)

func TestDeriveSeedNoCollisionsOverQuickGrid(t *testing.T) {
	// Every seed drawn anywhere in the quick grid — workload, sim, and
	// order streams, across several base seeds including ones the old
	// additive scheme collided on — must be unique.
	cfg := Quick()
	seen := map[int64]string{}
	add := func(seed int64, desc string) {
		t.Helper()
		if prev, ok := seen[seed]; ok {
			t.Fatalf("seed collision: %s and %s both map to %d", prev, desc, seed)
		}
		seen[seed] = desc
	}
	for _, base := range []int64{1, 2, 1001, 2001} {
		for _, runKey := range cfg.RunKeys {
			for rep := int64(0); rep < int64(cfg.Reps); rep++ {
				add(workloadSeed(base, runKey, rep), fmt.Sprintf("workload(%d,%s,%d)", base, runKey, rep))
				for _, unit := range cfg.Units {
					for _, policy := range PolicyNames {
						add(simSeed(base, runKey, policy, unit, rep),
							fmt.Sprintf("sim(%d,%s,%s,%v,%d)", base, runKey, policy, unit, rep))
					}
				}
				for ord := int64(0); ord < int64(cfg.Orders); ord++ {
					add(orderSeed(base, runKey, rep, ord), fmt.Sprintf("order(%d,%s,%d,%d)", base, runKey, rep, ord))
				}
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no seeds generated")
	}
}

func TestDeriveSeedFixesAdditiveCollision(t *testing.T) {
	// The old scheme (base + 1000*rep) made base 1 at rep 2 collide with
	// base 2001 at rep 0; the hash must keep them apart.
	if workloadSeed(1, "genome-s", 2) == workloadSeed(2001, "genome-s", 0) {
		t.Fatal("base-seed collision survived the hash")
	}
	// Streams must not alias each other on identical coordinates.
	if workloadSeed(1, "genome-s", 0) == orderSeed(1, "genome-s", 0, 0) {
		t.Fatal("workload and order streams alias")
	}
}

func TestWorkloadSeedPairedAcrossPolicies(t *testing.T) {
	// The paired design: the workload seed depends only on (base, run,
	// rep), never on policy or unit, while sim seeds are fully per-cell.
	a := workloadSeed(1, "tpch1-s", 1)
	if b := workloadSeed(1, "tpch1-s", 1); a != b {
		t.Fatal("workload seed not stable")
	}
	s1 := simSeed(1, "tpch1-s", "wire", 60, 1)
	s2 := simSeed(1, "tpch1-s", "full-site", 60, 1)
	if s1 == s2 {
		t.Fatal("sim seeds identical across policies")
	}
	if s1 < 0 || s2 < 0 || a < 0 {
		t.Fatal("derived seed negative")
	}
}
