package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// HistoryRow compares online (wire) and history-based steering on one
// across-run drift scenario.
type HistoryRow struct {
	RunKey string
	// Drift is the multiplicative shift applied to every task's true
	// execution time between the profiled run and the new run (1.0 = the
	// recurrent-run assumption holds).
	Drift float64
	// Policy is "wire" or "history-based".
	Policy string

	Cost        int
	Makespan    simtime.Duration
	Utilization float64
	// MeanAbsErr is the mean |estimated − actual| execution time over
	// all tasks, measuring how wrong each policy's estimates were.
	MeanAbsErr float64
}

// HistoryExperiment reproduces the paper's Observation 2 argument (§II-B):
// history-based planners inherit a previous run's statistics, so when task
// times drift across runs — different dataset, slower instances,
// interference — their estimates are systematically wrong, while WIRE's
// online models track the run that is actually happening.
//
// Protocol per workload: (1) profile a run at drift 1.0 under full-site and
// record per-stage medians; (2) for each drift factor, scale the new run's
// true execution times and execute it under wire and under the
// history-based controller fed the stale profile; (3) report cost,
// makespan, and estimate error.
func HistoryExperiment(cfg Config) ([]HistoryRow, error) {
	// One-minute units: the most elastic setting, where wrong estimates
	// translate directly into wrong pool sizes.
	unit := 1 * simtime.Minute
	drifts := []float64{1.0, 1.5, 2.5}
	var rows []HistoryRow
	for _, run := range catalogueRuns(cfg) {
		// Profile run: the recurrent job's previous execution.
		profWF := run.Generate(cfg.Seed)
		profCfg := cfg.simConfig(unit, cfg.Seed)
		profCfg.InitialInstances = cfg.MaxInstances
		profRes, err := sim.Run(profWF, baseline.Static{}, profCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: history profile %s: %w", run.Key, err)
		}
		profile := baseline.ProfileFromResult(profRes)

		for _, drift := range drifts {
			for _, policy := range []string{"history-based", "wire"} {
				wf := run.Generate(cfg.Seed + 77) // a different dataset instance
				scaleExecTimes(wf, drift)

				var ctrl sim.Controller
				hist := baseline.NewHistoryBased(profile)
				wired := core.New(core.Config{})
				if policy == "wire" {
					ctrl = wired
				} else {
					ctrl = hist
				}
				res, err := sim.Run(wf, ctrl, cfg.simConfig(unit, cfg.Seed+77))
				if err != nil {
					return nil, fmt.Errorf("experiments: history %s/%s drift=%v: %w", run.Key, policy, drift, err)
				}

				rows = append(rows, HistoryRow{
					RunKey:      run.Key,
					Drift:       drift,
					Policy:      policy,
					Cost:        res.UnitsCharged,
					Makespan:    res.Makespan,
					Utilization: res.Utilization,
					MeanAbsErr:  estimateError(policy, wf, res, hist, wired),
				})
			}
		}
	}
	return rows, nil
}

// scaleExecTimes applies the across-run drift to the ground truth.
func scaleExecTimes(wf *dag.Workflow, factor float64) {
	for _, t := range wf.Tasks {
		t.ExecTime *= factor
	}
}

// estimateError measures each policy's per-task execution-time estimate
// against the observed times of the new run.
func estimateError(policy string, wf *dag.Workflow, res *sim.Result, hist *baseline.HistoryBased, wired *core.Controller) float64 {
	var errs []float64
	if policy == "history-based" {
		for _, tr := range res.TaskRuns {
			est := hist.EstimateExec(tr.Stage)
			d := est - tr.ObservedExec
			if d < 0 {
				d = -d
			}
			errs = append(errs, d)
		}
	} else {
		preds := wired.PreStartPredictions()
		for _, tr := range res.TaskRuns {
			pr, ok := preds[tr.Task]
			if !ok || pr.Policy < 3 {
				continue // only completed-data policies are comparable
			}
			d := pr.EstimatedExec - tr.ObservedExec
			if d < 0 {
				d = -d
			}
			errs = append(errs, d)
		}
	}
	m, _ := stats.Mean(errs)
	return m
}

// HistoryReport renders the across-run comparison.
func HistoryReport(rows []HistoryRow) *report.Table {
	t := &report.Table{
		Title:   "Observation 2 — online (wire) vs history-based steering under across-run drift",
		Headers: []string{"run", "drift", "policy", "cost", "makespan", "util", "mean|est err|"},
	}
	for _, r := range rows {
		t.AddRow(r.RunKey, report.F(r.Drift, 1)+"x", r.Policy, r.Cost,
			simtime.FormatDuration(r.Makespan), report.F(r.Utilization*100, 1)+"%",
			report.F(r.MeanAbsErr, 2)+"s")
	}
	return t
}
