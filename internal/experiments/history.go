package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// HistoryRow compares online (wire) and history-based steering on one
// across-run drift scenario.
type HistoryRow struct {
	RunKey string
	// Drift is the multiplicative shift applied to every task's true
	// execution time between the profiled run and the new run (1.0 = the
	// recurrent-run assumption holds).
	Drift float64
	// Policy is "wire" or "history-based".
	Policy string

	Cost        int
	Makespan    simtime.Duration
	Utilization float64
	// MeanAbsErr is the mean |estimated − actual| execution time over
	// all tasks, measuring how wrong each policy's estimates were.
	MeanAbsErr float64
}

// HistoryExperiment reproduces the paper's Observation 2 argument (§II-B):
// history-based planners inherit a previous run's statistics, so when task
// times drift across runs — different dataset, slower instances,
// interference — their estimates are systematically wrong, while WIRE's
// online models track the run that is actually happening.
//
// Protocol per workload: (1) profile a run at drift 1.0 under full-site and
// record per-stage medians; (2) for each drift factor, scale the new run's
// true execution times and execute it under wire and under the
// history-based controller fed the stale profile; (3) report cost,
// makespan, and estimate error.
func HistoryExperiment(cfg Config) ([]HistoryRow, error) {
	// One-minute units: the most elastic setting, where wrong estimates
	// translate directly into wrong pool sizes.
	unit := 1 * simtime.Minute
	drifts := []float64{1.0, 1.5, 2.5}
	runs := catalogueRuns(cfg)

	// Phase 1 — profile runs (the recurrent job's previous execution),
	// one pool cell per workload.
	profiles, err := parallel.Map(len(runs), cfg.pool(), func(i int) (baseline.StageProfile, error) {
		run := runs[i]
		profWF := run.Generate(workloadSeed(cfg.Seed, run.Key, 0))
		profCfg := cfg.simConfig(unit, simSeed(cfg.Seed, run.Key, "full-site", unit, 0))
		profCfg.InitialInstances = cfg.MaxInstances
		profRes, err := sim.Run(profWF, baseline.Static{}, profCfg)
		if err != nil {
			return baseline.StageProfile{}, fmt.Errorf("experiments: history profile %s: %w", run.Key, err)
		}
		return baseline.ProfileFromResult(profRes), nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 — the drift × policy grid. Within one (run, drift) pair
	// both policies see the identical new dataset instance (rep 1) and
	// interference stream, so the comparison isolates the steering.
	type cellSpec struct {
		runIdx int
		drift  float64
		policy string
	}
	var specs []cellSpec
	for i := range runs {
		for _, drift := range drifts {
			for _, policy := range []string{"history-based", "wire"} {
				specs = append(specs, cellSpec{runIdx: i, drift: drift, policy: policy})
			}
		}
	}
	return parallel.Map(len(specs), cfg.pool(), func(i int) (HistoryRow, error) {
		s := specs[i]
		run := runs[s.runIdx]
		wf := run.Generate(workloadSeed(cfg.Seed, run.Key, 1)) // a different dataset instance
		scaleExecTimes(wf, s.drift)

		var ctrl sim.Controller
		hist := baseline.NewHistoryBased(profiles[s.runIdx])
		wired := core.New(core.Config{})
		if s.policy == "wire" {
			ctrl = wired
		} else {
			ctrl = hist
		}
		res, err := sim.Run(wf, ctrl, cfg.simConfig(unit, simSeed(cfg.Seed, run.Key, "drifted", unit, 1)))
		if err != nil {
			return HistoryRow{}, fmt.Errorf("experiments: history %s/%s drift=%v: %w", run.Key, s.policy, s.drift, err)
		}
		return HistoryRow{
			RunKey:      run.Key,
			Drift:       s.drift,
			Policy:      s.policy,
			Cost:        res.UnitsCharged,
			Makespan:    res.Makespan,
			Utilization: res.Utilization,
			MeanAbsErr:  estimateError(s.policy, wf, res, hist, wired),
		}, nil
	})
}

// scaleExecTimes applies the across-run drift to the ground truth.
func scaleExecTimes(wf *dag.Workflow, factor float64) {
	for _, t := range wf.Tasks {
		t.ExecTime *= factor
	}
}

// estimateError measures each policy's per-task execution-time estimate
// against the observed times of the new run.
func estimateError(policy string, wf *dag.Workflow, res *sim.Result, hist *baseline.HistoryBased, wired *core.Controller) float64 {
	var errs []float64
	if policy == "history-based" {
		for _, tr := range res.TaskRuns {
			est := hist.EstimateExec(tr.Stage)
			d := est - tr.ObservedExec
			if d < 0 {
				d = -d
			}
			errs = append(errs, d)
		}
	} else {
		preds := wired.PreStartPredictions()
		for _, tr := range res.TaskRuns {
			pr, ok := preds[tr.Task]
			if !ok || pr.Policy < 3 {
				continue // only completed-data policies are comparable
			}
			d := pr.EstimatedExec - tr.ObservedExec
			if d < 0 {
				d = -d
			}
			errs = append(errs, d)
		}
	}
	m, _ := stats.Mean(errs)
	return m
}

// HistoryReport renders the across-run comparison.
func HistoryReport(rows []HistoryRow) *report.Table {
	t := &report.Table{
		Title:   "Observation 2 — online (wire) vs history-based steering under across-run drift",
		Headers: []string{"run", "drift", "policy", "cost", "makespan", "util", "mean|est err|"},
	}
	for _, r := range rows {
		t.AddRow(r.RunKey, report.F(r.Drift, 1)+"x", r.Policy, r.Cost,
			simtime.FormatDuration(r.Makespan), report.F(r.Utilization*100, 1)+"%",
			report.F(r.MeanAbsErr, 2)+"s")
	}
	return t
}
