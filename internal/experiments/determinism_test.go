package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// renderSuite runs the quick-config cost grid and Figure 2 sweep at one
// worker count and renders everything to a string.
func renderSuite(t *testing.T, workers int) (string, *CostResult, []LinearPoint) {
	t.Helper()
	cfg := Quick()
	cfg.Workers = workers
	cost, err := CostExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	points, err := LinearSweep(cfg, RGreaterU)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cost.Figure5Report().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if err := cost.Figure6Report().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if err := LinearReport(points).Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String(), cost, points
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The acceptance property of the parallel runner: identical seeds
	// must yield byte-identical results at any parallelism.
	out1, cost1, pts1 := renderSuite(t, 1)
	out8, cost8, pts8 := renderSuite(t, 8)
	if out1 != out8 {
		t.Fatalf("rendered output differs between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", out1, out8)
	}
	// ControllerWallMean is real CPU time, the one legitimately
	// nondeterministic field; everything else must match exactly.
	strip := func(cells []CostCell) []CostCell {
		out := append([]CostCell(nil), cells...)
		for i := range out {
			out[i].Summary.ControllerWallMean = 0
		}
		return out
	}
	if !reflect.DeepEqual(strip(cost1.Cells), strip(cost8.Cells)) {
		t.Fatal("cost cells differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(pts1, pts8) {
		t.Fatal("linear points differ between workers=1 and workers=8")
	}
}

func TestPredictionDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := tiny()
	cfg.RunKeys = []string{"tpch6-s", "pagerank-s"}
	cfg.Reps, cfg.Orders = 2, 2
	run := func(workers int) []PredictionRun {
		c := cfg
		c.Workers = workers
		out, err := PredictionExperiment(c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatal("prediction runs differ between workers=1 and workers=8")
	}
}

func TestProgressCallbackCountsCells(t *testing.T) {
	cfg := tiny()
	total := -1
	final := 0
	// Workers=1 keeps the callback sequential so plain ints are safe.
	cfg.Workers = 1
	cfg.Progress = func(done, n int) { final, total = done, n }
	if _, err := CostExperiment(cfg); err != nil {
		t.Fatal(err)
	}
	want := len(PolicyNames) // tiny: 1 run x 1 unit x 4 policies
	if total != want || final != want {
		t.Fatalf("progress saw %d/%d, want %d/%d", final, total, want, want)
	}
}
