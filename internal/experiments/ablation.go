package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// staticProfiler is a no-op controller used to record warm-start profiles.
type staticProfiler struct{}

func (staticProfiler) Name() string                        { return "profiler" }
func (staticProfiler) Plan(*monitor.Snapshot) sim.Decision { return sim.Decision{} }

// AblationRow is one variant of one ablation study.
type AblationRow struct {
	Study   string
	Variant string
	RunKey  string
	Unit    simtime.Duration

	Cost        float64 // charging units
	Makespan    simtime.Duration
	Utilization float64
	Restarts    int

	// Extra carries a study-specific metric (e.g. prediction error).
	Extra string
}

// AblationExperiment exercises the design choices DESIGN.md calls out, one
// study per knob:
//
//   - util-target: the §IV-A aggressiveness knob on the slowest Figure 6
//     cell (Genome L at u = 30 min) — lower targets buy speed with cost.
//   - first-five: the §III-C priority patch on Genome S — without it the
//     predictor waits longer for its first per-stage completions.
//   - restart-frac: the 0.2u release threshold of Algorithm 2.
//   - ogd-epochs: gradient passes per MAPE interval (Algorithm 1 uses 1).
//   - charge-origin: billing from activation (default) vs from the launch
//     request.
func AblationExperiment(cfg Config) ([]AblationRow, error) {
	// runVariant executes one knob setting. The controller is built
	// inside the job (stateful controllers must not be shared across
	// cells); seeds are fixed per (run, unit) so variants of one study
	// differ only in the knob under test.
	runVariant := func(study, variant, runKey string, unit simtime.Duration, mutate func(*sim.Config), mkCtrl func() sim.Controller) (AblationRow, error) {
		run, ok := workloads.ByKey(runKey)
		if !ok {
			return AblationRow{}, fmt.Errorf("experiments: unknown run %q", runKey)
		}
		wf := run.Generate(workloadSeed(cfg.Seed, runKey, 0))
		simCfg := cfg.simConfig(unit, simSeed(cfg.Seed, runKey, "wire", unit, 0))
		if mutate != nil {
			mutate(&simCfg)
		}
		res, err := sim.Run(wf, mkCtrl(), simCfg)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiments: ablation %s/%s: %w", study, variant, err)
		}
		return AblationRow{
			Study:       study,
			Variant:     variant,
			RunKey:      runKey,
			Unit:        unit,
			Cost:        float64(res.UnitsCharged),
			Makespan:    res.Makespan,
			Utilization: res.Utilization,
			Restarts:    res.Restarts,
		}, nil
	}

	// Each job yields the rows of one independent cell; jobs run on the
	// shared pool and concatenate in declaration order, preserving the
	// study grouping of the sequential version.
	var jobs []func() ([]AblationRow, error)
	oneRow := func(study, variant, runKey string, unit simtime.Duration, mutate func(*sim.Config), mkCtrl func() sim.Controller) {
		jobs = append(jobs, func() ([]AblationRow, error) {
			row, err := runVariant(study, variant, runKey, unit, mutate, mkCtrl)
			if err != nil {
				return nil, err
			}
			return []AblationRow{row}, nil
		})
	}

	// Utilization target: Genome L at 30 min, the economy-mode cell.
	for _, theta := range []float64{1.0, 0.8, 0.6, 0.4} {
		theta := theta
		oneRow("util-target", fmt.Sprintf("theta=%.1f", theta),
			"genome-l", 30*simtime.Minute, nil,
			func() sim.Controller { return core.New(core.Config{UtilizationTarget: theta}) })
	}

	// First-five priority on/off.
	for _, off := range []bool{false, true} {
		variant, mutate := "on", func(*sim.Config) {}
		if off {
			variant = "off"
			mutate = func(sc *sim.Config) { sc.DisableFirstFive = true }
		}
		oneRow("first-five", variant, "genome-s", 1*simtime.Minute,
			mutate, func() sim.Controller { return core.New(core.Config{}) })
	}

	// Restart-cost release threshold.
	for _, frac := range []float64{0.1, 0.2, 0.4} {
		frac := frac
		oneRow("restart-frac", fmt.Sprintf("c<=%.1fu", frac),
			"pagerank-l", 15*simtime.Minute, nil,
			func() sim.Controller { return core.New(core.Config{RestartFrac: frac}) })
	}

	// Billing origin.
	for _, fromReq := range []bool{false, true} {
		variant, mutate := "from-activation", func(*sim.Config) {}
		if fromReq {
			variant = "from-request"
			mutate = func(sc *sim.Config) { sc.Cloud.ChargeFromRequest = true }
		}
		oneRow("charge-origin", variant, "genome-s", 1*simtime.Minute,
			mutate, func() sim.Controller { return core.New(core.Config{}) })
	}

	// Site capacity: how wire's cost/speed scales with the instance cap
	// (§IV-B: ExoGENI sites provided 1-12 instances).
	for _, cap := range []int{2, 6, 12} {
		cap := cap
		oneRow("site-cap", fmt.Sprintf("max=%d", cap),
			"pagerank-l", 1*simtime.Minute,
			func(sc *sim.Config) { sc.Cloud.MaxInstances = cap },
			func() sim.Controller { return core.New(core.Config{}) })
	}

	// Warm-start priors (extension): seed the predictor with the
	// previous run's per-stage medians; the early MAPE iterations then
	// see real demand instead of Policy 1's zero estimates. One job:
	// both variants need the same profile run.
	jobs = append(jobs, func() ([]AblationRow, error) {
		run, _ := workloads.ByKey("genome-s")
		profWF := run.Generate(workloadSeed(cfg.Seed, "genome-s", 0))
		profCfg := cfg.simConfig(1*simtime.Minute, simSeed(cfg.Seed, "genome-s", "full-site", 1*simtime.Minute, 0))
		profCfg.InitialInstances = cfg.MaxInstances
		profRes, err := sim.Run(profWF, staticProfiler{}, profCfg)
		if err != nil {
			return nil, err
		}
		priors := map[dag.StageID]float64{}
		byStage := map[dag.StageID][]float64{}
		for _, tr := range profRes.TaskRuns {
			byStage[tr.Stage] = append(byStage[tr.Stage], tr.ObservedExec)
		}
		for sid, execs := range byStage {
			priors[sid], _ = stats.Median(execs)
		}
		var out []AblationRow
		for _, variant := range []string{"cold", "warm"} {
			pcfg := predict.Config{}
			if variant == "warm" {
				pcfg.Priors = priors
			}
			row, err := runVariant("warm-start", variant, "genome-s", 1*simtime.Minute, nil,
				func() sim.Controller { return core.New(core.Config{Predictor: pcfg}) })
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
		return out, nil
	})

	// OGD epochs per interval: measured through the Figure 4 replay on
	// the run whose stages lean hardest on Policy 5.
	for _, epochs := range []int{1, 4, 16} {
		epochs := epochs
		jobs = append(jobs, func() ([]AblationRow, error) {
			meanAbs, within, err := predictionAccuracy(cfg, "pagerank-s",
				predict.Config{EpochsPerUpdate: epochs})
			if err != nil {
				return nil, err
			}
			return []AblationRow{{
				Study:   "ogd-epochs",
				Variant: fmt.Sprintf("epochs=%d", epochs),
				RunKey:  "pagerank-s",
				Extra:   fmt.Sprintf("medium mean|err|=%.2fs, %.1f%% <=1s", meanAbs, within*100),
			}}, nil
		})
	}

	return parallel.FlatMap(len(jobs), cfg.pool(), func(i int) ([]AblationRow, error) {
		return jobs[i]()
	})
}

// predictionAccuracy reruns the Figure 4 replay for one run with a custom
// predictor configuration and returns the medium-stage accuracy.
func predictionAccuracy(cfg Config, runKey string, pcfg predict.Config) (meanAbs, within float64, err error) {
	run, ok := workloads.ByKey(runKey)
	if !ok {
		return 0, 0, fmt.Errorf("experiments: unknown run %q", runKey)
	}
	wf := run.Generate(workloadSeed(cfg.Seed, runKey, 0))
	observed, err := observeRun(cfg, wf, runKey, 0)
	if err != nil {
		return 0, 0, err
	}
	var samples []metrics.ErrorSample
	for ord := 0; ord < maxInt(cfg.Orders, 1); ord++ {
		rng := newOrderRNG(cfg.Seed, runKey, 0, int64(ord))
		for _, st := range wf.Stages {
			if len(st.Tasks) < 2 {
				continue
			}
			perm := shuffledStage(st.Tasks, rng)
			samples = append(samples, replayStageWith(wf, st, perm, observed, pcfg)...)
		}
	}
	sums := metrics.Summarize(samples)
	m, ok := sums[metrics.MediumStage]
	if !ok {
		// Fall back to whatever class exists.
		for _, s := range sums {
			m = s
			break
		}
	}
	return m.MeanAbsTrueError, m.FracWithin1s, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationReport renders the study table.
func AblationReport(rows []AblationRow) *report.Table {
	t := &report.Table{
		Title:   "Ablations — design-choice sensitivity",
		Headers: []string{"study", "variant", "run", "unit", "cost", "makespan", "util", "restarts", "notes"},
	}
	for _, r := range rows {
		unit := "-"
		if r.Unit > 0 {
			unit = simtime.FormatDuration(r.Unit)
		}
		cost, span, util := "-", "-", "-"
		if r.Unit > 0 {
			cost = report.F(r.Cost, 0)
			span = simtime.FormatDuration(r.Makespan)
			util = report.F(r.Utilization*100, 1) + "%"
		}
		t.AddRow(r.Study, r.Variant, r.RunKey, unit, cost, span, util, r.Restarts, r.Extra)
	}
	return t
}
