package experiments

import (
	"math"

	"repro/internal/simtime"
)

// Per-cell seed derivation. The old scheme (`cfg.Seed + 1000*rep`) collides
// across base seeds — base 1 at rep 2 equals base 2001 at rep 0 — so two
// "independent" suite invocations could silently share workload instances.
// Instead every stream folds its full coordinates through a splitmix64-style
// hash:
//
//	workload  (base, runKey, rep)                — shared by every policy and
//	                                               unit so comparisons stay
//	                                               paired on one instance
//	sim       (base, runKey, policy, unit, rep)  — per-cell interference
//	order     (base, runKey, rep, ord)           — Figure 4 task orders
//
// Seeds are pure functions of their coordinates, so any worker may compute
// any cell and the grid result is independent of scheduling.

// seed stream labels; folding the stream first keeps, say, workload and
// order seeds of the same cell from ever coinciding.
const (
	streamWorkload = "workload"
	streamSim      = "sim"
	streamOrder    = "order"
)

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators"): an invertible mix
// whose outputs pass BigCrush, so nearby inputs land far apart.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strPart hashes a label (FNV-1a 64) into a mixable word.
func strPart(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unitPart folds a charging unit; units are exact small floats, so the bit
// pattern is a stable identity.
func unitPart(u simtime.Duration) uint64 {
	return math.Float64bits(u)
}

// deriveSeed chains the base seed, a stream label, and the cell coordinates
// through one splitmix round per part, returning a non-negative seed for
// math/rand.
func deriveSeed(base int64, stream string, parts ...uint64) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ strPart(stream))
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return int64(h &^ (1 << 63))
}

// workloadSeed generates the dataset instance of one (run, rep) cell. It
// deliberately omits policy and unit: all policies of a rep compete on the
// identical workload (the paper's paired design).
func workloadSeed(base int64, runKey string, rep int64) int64 {
	return deriveSeed(base, streamWorkload, strPart(runKey), uint64(rep))
}

// simSeed drives the execution simulator (interference sampling) of one
// fully qualified grid cell.
func simSeed(base int64, runKey, policy string, unit simtime.Duration, rep int64) int64 {
	return deriveSeed(base, streamSim, strPart(runKey), strPart(policy), unitPart(unit), uint64(rep))
}

// orderSeed shuffles one random task order of the Figure 4 replay.
func orderSeed(base int64, runKey string, rep, ord int64) int64 {
	return deriveSeed(base, streamOrder, strPart(runKey), uint64(rep), uint64(ord))
}
