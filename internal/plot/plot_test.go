package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("svg not well-formed: %v\n%s", err, svg)
		}
	}
}

func TestChartSVG(t *testing.T) {
	c := &Chart{
		Title:  "Figure 2 <shape>",
		XLabel: "R/U",
		YLabel: "ratio",
		Series: []Series{
			{Name: "N=10", X: []float64{1, 2, 5, 10}, Y: []float64{1.5, 1.25, 1.1, 1.05}},
			{Name: "N=100", X: []float64{1, 2, 5, 10}, Y: []float64{1.65, 1.25, 1.1, 1.05}},
		},
		LogX: true,
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	for _, want := range []string{"<svg", "polyline", "N=10", "N=100", "R/U", "&lt;shape&gt;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Two polylines for two series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d", got)
	}
}

func TestChartEmptyErrors(t *testing.T) {
	c := &Chart{Title: "empty"}
	if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error for empty chart")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{2}}}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestChartLogSkipsNonPositive(t *testing.T) {
	c := &Chart{
		LogX:   true,
		Series: []Series{{Name: "s", X: []float64{0, 1, 10}, Y: []float64{1, 2, 3}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	// Two markers survive (x=0 dropped).
	if got := strings.Count(buf.String(), "<circle"); got != 2 {
		t.Fatalf("markers = %d", got)
	}
}

func TestBarChartSVG(t *testing.T) {
	c := &BarChart{
		Title:       "Figure 5",
		YLabel:      "charging units",
		SeriesNames: []string{"full-site", "wire"},
		Groups: []BarGroup{
			{Label: "1m", Values: []float64{60, 39}},
			{Label: "30m", Values: []float64{12, 1}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	if got := strings.Count(out, "<rect"); got < 5 { // background + 4 bars + legend
		t.Fatalf("rects = %d", got)
	}
	for _, want := range []string{"full-site", "wire", "1m", "30m"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestBarChartEmptyErrors(t *testing.T) {
	if err := (&BarChart{Title: "x"}).WriteSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBarChartLogY(t *testing.T) {
	c := &BarChart{
		SeriesNames: []string{"a"},
		Groups:      []BarGroup{{Label: "g", Values: []float64{0, 1000}}},
		LogY:        true,
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", escape(`a<b>&"c"`))
	}
}
