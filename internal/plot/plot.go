// Package plot renders experiment results as standalone SVG documents
// using only the standard library — line/scatter charts for the Figure 2/3
// sweeps and Figure 4 CDFs, and grouped bar charts for Figures 5/6.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette is a small colour-blind-friendly cycle.
var palette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb"}

func color(i int) string { return palette[i%len(palette)] }

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a line chart with optional log axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	LogX   bool
	LogY   bool
	Width  int
	Height int
}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 50
)

func (c *Chart) size() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}
	return w, h
}

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	width, height := c.size()
	var minX, maxX, minY, maxY float64
	first := true
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	for _, s := range c.Series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			if first {
				minX, maxX, minY, maxY = x, x, y, y
				first = false
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if first {
		return fmt.Errorf("plot: chart %q has no finite points", c.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom on Y.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(v float64) float64 { return marginL + (tx(v)-minX)/(maxX-minX)*plotW }
	py := func(v float64) float64 { return float64(height-marginB) - (ty(v)-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	header(&b, width, height, c.Title)
	axes(&b, width, height, c.XLabel, c.YLabel)

	// Ticks: 5 per axis in transformed space, labelled in data space.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		vx := fx
		if c.LogX {
			vx = math.Pow(10, fx)
		}
		x := marginL + plotW*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			x, marginT, x, height-marginB)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+16, fmtTick(vx))

		fy := minY + (maxY-minY)*float64(i)/4
		vy := fy
		if c.LogY {
			vy = math.Pow(10, fy)
		}
		y := float64(height-marginB) - plotH*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, fmtTick(vy))
	}

	for si, s := range c.Series {
		var pts []string
		for i := range s.X {
			if s.X[i] <= 0 && c.LogX {
				continue
			}
			if s.Y[i] <= 0 && c.LogY {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color(si), strings.Join(pts, " "))
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n", xy[0], xy[1], color(si))
		}
		// Legend entry.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-marginR-130, ly, color(si))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR-115, ly+9, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// BarGroup is one cluster of bars sharing an x label.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart is a grouped bar chart (Figures 5/6: one group per charging
// unit, one bar per policy).
type BarChart struct {
	Title       string
	YLabel      string
	SeriesNames []string
	Groups      []BarGroup
	LogY        bool
	Width       int
	Height      int
}

// WriteSVG renders the bar chart.
func (c *BarChart) WriteSVG(w io.Writer) error {
	width, height := (&Chart{Width: c.Width, Height: c.Height}).size()
	if len(c.Groups) == 0 || len(c.SeriesNames) == 0 {
		return fmt.Errorf("plot: bar chart %q is empty", c.Title)
	}
	ty := func(v float64) float64 {
		if c.LogY {
			if v <= 0 {
				return 0
			}
			return math.Log10(1 + v)
		}
		return v
	}
	maxY := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if ty(v) > maxY {
				maxY = ty(v)
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	var b strings.Builder
	header(&b, width, height, c.Title)
	axes(&b, width, height, "", c.YLabel)

	groupW := plotW / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(len(c.SeriesNames))
	for gi, g := range c.Groups {
		gx := marginL + groupW*float64(gi)
		for si, v := range g.Values {
			if si >= len(c.SeriesNames) {
				break
			}
			h := ty(v) / maxY * plotH
			x := gx + groupW*0.1 + barW*float64(si)
			y := float64(height-marginB) - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s=%.2f</title></rect>`+"\n",
				x, y, barW*0.9, h, color(si), escape(c.SeriesNames[si]), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, height-marginB+16, escape(g.Label))
	}
	for si, name := range c.SeriesNames {
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-marginR-150, ly, color(si))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR-135, ly+9, escape(name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, width, height int, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginL, escape(title))
}

func axes(b *strings.Builder, width, height int, xlabel, ylabel string) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	if xlabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			(marginL+width-marginR)/2, height-12, escape(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(ylabel))
	}
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
