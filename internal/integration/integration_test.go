// Package integration holds cross-module invariant tests: every catalogued
// workload is executed under every policy and the end-to-end results are
// checked against properties no single package can verify alone —
// dependency order on the real schedule, billing consistency, utilization
// bounds, site-cap respect, and determinism.
package integration

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

func controllers() map[string]func() sim.Controller {
	return map[string]func() sim.Controller{
		"full-site":           func() sim.Controller { return baseline.Static{} },
		"pure-reactive":       func() sim.Controller { return baseline.PureReactive{} },
		"reactive-conserving": func() sim.Controller { return &baseline.ReactiveConserving{} },
		"wire":                func() sim.Controller { return core.New(core.Config{}) },
	}
}

func siteConfig(unit simtime.Duration) cloud.Config {
	return cloud.Config{SlotsPerInstance: 4, LagTime: 180, ChargingUnit: unit, MaxInstances: 12}
}

// runOne executes one (workload, policy, unit) cell.
func runOne(t *testing.T, key, policy string, unit simtime.Duration, seed int64) (*dag.Workflow, *sim.Result) {
	t.Helper()
	run, ok := workloads.ByKey(key)
	if !ok {
		t.Fatalf("unknown workload %q", key)
	}
	wf := run.Generate(seed)
	cfg := sim.Config{
		Cloud:        siteConfig(unit),
		Seed:         seed,
		Interference: dist.NewLognormalFromMean(1, 0.05),
	}
	if policy == "full-site" {
		cfg.InitialInstances = cfg.Cloud.MaxInstances
	}
	res, err := sim.Run(wf, controllers()[policy](), cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", key, policy, err)
	}
	return wf, res
}

// checkInvariants verifies the cross-module properties of one finished run.
func checkInvariants(t *testing.T, wf *dag.Workflow, res *sim.Result, maxInstances int) {
	t.Helper()

	// Every task completed exactly once.
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatalf("completed %d of %d tasks", len(res.TaskRuns), wf.NumTasks())
	}
	end := make(map[dag.TaskID]simtime.Time, len(res.TaskRuns))
	seen := make(map[dag.TaskID]bool, len(res.TaskRuns))
	for _, tr := range res.TaskRuns {
		if seen[tr.Task] {
			t.Fatalf("task %d completed twice", tr.Task)
		}
		seen[tr.Task] = true
		end[tr.Task] = tr.End
	}

	for _, tr := range res.TaskRuns {
		// Dependency order holds on the real schedule.
		for _, d := range wf.Task(tr.Task).Deps {
			if tr.Start < end[d]-simtime.Eps {
				t.Fatalf("task %d started at %v before dep %d ended at %v", tr.Task, tr.Start, d, end[d])
			}
		}
		// The successful attempt's span equals its observed occupancy.
		if got, want := tr.End-tr.Start, tr.ObservedExec+tr.ObservedTransfer; !simtime.Equal(got, want) {
			t.Fatalf("task %d span %v != occupancy %v", tr.Task, got, want)
		}
		// Nothing runs before the first instance can exist.
		if tr.Start < 180-simtime.Eps {
			t.Fatalf("task %d started at %v, before the lag", tr.Task, tr.Start)
		}
		if tr.End > res.Makespan+simtime.Eps {
			t.Fatalf("task %d ended after makespan", tr.Task)
		}
	}

	// Makespan is bounded below by the best possible schedule.
	if res.Makespan < wf.CriticalPathExec()*0.9 {
		t.Fatalf("makespan %v below critical path %v", res.Makespan, wf.CriticalPathExec())
	}

	// Billing: units x unit-length equals charged seconds; utilization is
	// a true fraction.
	if res.UnitsCharged <= 0 {
		t.Fatal("no units charged")
	}
	if res.Utilization <= 0 || res.Utilization > 1+simtime.Eps {
		t.Fatalf("utilization %v out of range", res.Utilization)
	}

	// Pool never exceeded the site cap and drained at the end.
	for _, s := range res.Pool {
		if maxInstances > 0 && s.Held > maxInstances {
			t.Fatalf("pool %d exceeded cap %d", s.Held, maxInstances)
		}
	}
	if last := res.Pool[len(res.Pool)-1]; last.Held != 0 {
		t.Fatalf("pool not drained: %+v", last)
	}
	if res.PeakPool > maxInstances && maxInstances > 0 {
		t.Fatalf("peak pool %d exceeded cap", res.PeakPool)
	}
}

func TestAllWorkloadsAllPoliciesInvariants(t *testing.T) {
	units := []simtime.Duration{1 * simtime.Minute, 30 * simtime.Minute}
	for _, key := range workloads.Keys() {
		if key == "genome-l" && testing.Short() {
			continue
		}
		for policy := range controllers() {
			for _, unit := range units {
				key, policy, unit := key, policy, unit
				t.Run(fmt.Sprintf("%s/%s/%s", key, policy, simtime.FormatDuration(unit)), func(t *testing.T) {
					t.Parallel()
					wf, res := runOne(t, key, policy, unit, 1)
					checkInvariants(t, wf, res, 12)
				})
			}
		}
	}
}

func TestDeterminismAcrossPolicies(t *testing.T) {
	for policy := range controllers() {
		_, a := runOne(t, "tpch1-s", policy, 15*simtime.Minute, 7)
		_, b := runOne(t, "tpch1-s", policy, 15*simtime.Minute, 7)
		if a.Makespan != b.Makespan || a.UnitsCharged != b.UnitsCharged || a.Restarts != b.Restarts {
			t.Fatalf("%s nondeterministic: %v/%d vs %v/%d", policy, a.Makespan, a.UnitsCharged, b.Makespan, b.UnitsCharged)
		}
	}
}

func TestWireNeverCostsMoreThanFullSiteAtCoarseUnits(t *testing.T) {
	// At u >= 15 min, wire's whole point is to beat static peak
	// provisioning on the bill.
	for _, key := range []string{"genome-s", "tpch1-s", "tpch6-l", "pagerank-s"} {
		_, full := runOne(t, key, "full-site", 30*simtime.Minute, 1)
		_, w := runOne(t, key, "wire", 30*simtime.Minute, 1)
		if w.UnitsCharged > full.UnitsCharged {
			t.Fatalf("%s: wire %d > full-site %d units", key, w.UnitsCharged, full.UnitsCharged)
		}
	}
}

func TestFullSiteIsFastest(t *testing.T) {
	for _, key := range []string{"genome-s", "pagerank-s"} {
		_, full := runOne(t, key, "full-site", 15*simtime.Minute, 1)
		for _, policy := range []string{"pure-reactive", "reactive-conserving", "wire"} {
			_, res := runOne(t, key, policy, 15*simtime.Minute, 1)
			if res.Makespan < full.Makespan-simtime.Eps {
				t.Fatalf("%s/%s faster than full-site: %v vs %v", key, policy, res.Makespan, full.Makespan)
			}
		}
	}
}

func TestRestartsOnlyWithReleases(t *testing.T) {
	// Full-site never releases, so it can never restart tasks.
	for _, key := range workloads.Keys() {
		if key == "genome-l" {
			continue // covered by the grid test; keep this loop fast
		}
		_, res := runOne(t, key, "full-site", 1*simtime.Minute, 3)
		if res.Restarts != 0 {
			t.Fatalf("%s: full-site restarted %d tasks", key, res.Restarts)
		}
	}
}

func TestWireUtilizationAboveReactiveAtCoarseUnits(t *testing.T) {
	// The design goal: utilization above a target level over any charging
	// unit. At 30 min units wire must keep utilization high where
	// pure-reactive churns.
	_, w := runOne(t, "pagerank-l", "wire", 30*simtime.Minute, 1)
	_, pr := runOne(t, "pagerank-l", "pure-reactive", 30*simtime.Minute, 1)
	if w.Utilization <= pr.Utilization {
		t.Fatalf("wire utilization %.2f <= pure-reactive %.2f", w.Utilization, pr.Utilization)
	}
	if w.Utilization < 0.5 {
		t.Fatalf("wire utilization %.2f below target", w.Utilization)
	}
}

func TestWireSurvivesInstanceFailures(t *testing.T) {
	// Chaos run: instances crash with a mean lifetime of ~2 charging
	// units; WIRE must still drive the workflow to completion and the
	// invariants must hold.
	run, _ := workloads.ByKey("pagerank-s")
	wf := run.Generate(1)
	cfg := sim.Config{
		Cloud:      siteConfig(5 * simtime.Minute),
		Seed:       13,
		MTBF:       10 * simtime.Minute,
		MaxSimTime: 1e7,
	}
	res, err := sim.Run(wf, core.New(core.Config{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatalf("completed %d of %d tasks", len(res.TaskRuns), wf.NumTasks())
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected")
	}
	checkInvariants(t, wf, res, 12)
}

// TestAllPoliciesSurviveInstanceFailures extends the MTBF chaos run to every
// policy: failures must actually be injected and the workflow must still
// complete with the cross-module invariants intact. Full-site never
// relaunches, so it gets a gentler failure rate its static pool can outlive;
// the elastic policies replenish and take the aggressive one.
func TestAllPoliciesSurviveInstanceFailures(t *testing.T) {
	mtbf := map[string]simtime.Duration{
		"wire":                10 * simtime.Minute,
		"pure-reactive":       10 * simtime.Minute,
		"reactive-conserving": 10 * simtime.Minute,
		"full-site":           90 * simtime.Minute,
	}
	for policy, mk := range controllers() {
		policy, mk := policy, mk
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			run, _ := workloads.ByKey("pagerank-s")
			wf := run.Generate(1)
			cfg := sim.Config{
				Cloud:      siteConfig(5 * simtime.Minute),
				Seed:       13,
				MTBF:       mtbf[policy],
				MaxSimTime: 1e7,
			}
			if policy == "full-site" {
				cfg.InitialInstances = cfg.Cloud.MaxInstances
			}
			res, err := sim.Run(wf, mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failures == 0 {
				t.Fatal("no failures injected; lower the MTBF")
			}
			checkInvariants(t, wf, res, 12)

			// Determinism holds on the failure path too.
			twin, err := sim.Run(run.Generate(1), mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if twin.Makespan != res.Makespan || twin.Failures != res.Failures || twin.Restarts != res.Restarts {
				t.Fatalf("failure path nondeterministic: %v/%d/%d vs %v/%d/%d",
					res.Makespan, res.Failures, res.Restarts, twin.Makespan, twin.Failures, twin.Restarts)
			}
		})
	}
}

func TestGrowthScheduleMatchesSection3E(t *testing.T) {
	// §III-E: with one-slot instances and a single stage of N identical
	// tasks, the pool at elapsed time tau (before any completion) should
	// track N*tau/U — "a new instance after (P+1)(U/N) time units".
	const (
		n = 40
		u = 400.0
		r = 1000.0 // R > U so no completion interferes early
	)
	wf := workloads.Linear(n, r)
	ctrl := core.New(core.Config{})
	res, err := sim.Run(wf, ctrl, sim.Config{
		Cloud:            cloud.Config{SlotsPerInstance: 1, LagTime: 0, ChargingUnit: u, MaxInstances: 0},
		Interval:         u / 40, // 10s control period
		InitialInstances: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	heldAt := func(tm simtime.Time) int {
		held := 0
		for _, s := range res.Pool {
			if s.Time > tm {
				break
			}
			held = s.Held
		}
		return held
	}
	// §III-E's closed form P = N*tau/U assumes the Policy-2 estimate is
	// the elapsed time of the oldest runner; the policy as stated uses
	// the *median* elapsed over the staggered cohorts, which grows with
	// the same linear shape at roughly half the slope. Assert linear
	// growth within that band, and monotonicity.
	prev := 0.0
	for _, tau := range []float64{100, 200, 300, 400} {
		ideal := n * tau / u
		got := float64(heldAt(tau))
		if got < ideal/3-2 || got > ideal*1.4+2 {
			t.Fatalf("pool at tau=%v is %v, outside [%v, %v] around N*tau/U=%v",
				tau, got, ideal/3-2, ideal*1.4+2, ideal)
		}
		if got < prev {
			t.Fatalf("pool shrank during the growth phase: %v -> %v at tau=%v", prev, got, tau)
		}
		prev = got
	}
}

func TestExtrasUnderWire(t *testing.T) {
	// The extra Pegasus families (Montage, CyberShake, LIGO, SIPHT) must
	// run end to end under WIRE with the invariants intact.
	for _, spec := range workloads.Extras() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			wf := spec.MustGenerate(1)
			res, err := sim.Run(wf, core.New(core.Config{}), sim.Config{
				Cloud:        siteConfig(5 * simtime.Minute),
				Seed:         1,
				Interference: dist.NewLognormalFromMean(1, 0.05),
			})
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, wf, res, 12)
		})
	}
}
