package integration

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/dist"
	"repro/internal/lookahead"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// randomWorkflow builds a random layered DAG with skewed task times and
// grouped input sizes — the adversarial input for whole-stack properties.
func randomWorkflow(seed int64) *dag.Workflow {
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder("prop")
	layers := rng.Intn(4) + 1
	var prev []dag.TaskID
	for l := 0; l < layers; l++ {
		st := b.AddStage("layer")
		width := rng.Intn(8) + 1
		var cur []dag.TaskID
		for i := 0; i < width; i++ {
			var deps []dag.TaskID
			for _, p := range prev {
				if rng.Float64() < 0.4 {
					deps = append(deps, p)
				}
			}
			if l > 0 && len(deps) == 0 {
				deps = append(deps, prev[rng.Intn(len(prev))])
			}
			exec := 1 + rng.Float64()*120
			transfer := rng.Float64() * 5
			size := float64(10 * (1 + rng.Intn(4)))
			cur = append(cur, b.AddTask(st, "t", exec, transfer, size, deps...))
		}
		prev = cur
	}
	return b.MustBuild()
}

// runRandom executes a random workflow under a seed-chosen policy and
// cloud shape.
func runRandom(seed int64) (*dag.Workflow, *sim.Result, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	wf := randomWorkflow(seed)
	var ctrl sim.Controller
	switch rng.Intn(4) {
	case 0:
		ctrl = core.New(core.Config{})
	case 1:
		ctrl = baseline.PureReactive{}
	case 2:
		ctrl = &baseline.ReactiveConserving{}
	default:
		ctrl = core.NewDeadline(core.DeadlineConfig{Deadline: 600 + rng.Float64()*3000})
	}
	cfg := sim.Config{
		Cloud: cloud.Config{
			SlotsPerInstance: 1 + rng.Intn(4),
			LagTime:          float64(rng.Intn(120)),
			ChargingUnit:     float64(30 + rng.Intn(600)),
			MaxInstances:     1 + rng.Intn(12),
		},
		Seed:         seed,
		Interference: dist.NewLognormalFromMean(1, 0.1),
		MaxSimTime:   5e6,
	}
	if rng.Intn(3) == 0 {
		cfg.MTBF = 600 + rng.Float64()*3000
	}
	res, err := sim.Run(wf, ctrl, cfg)
	return wf, res, err
}

// Property: any random workflow under any bundled policy completes with the
// cross-module invariants intact.
func TestRandomWorkflowsAllPoliciesProperty(t *testing.T) {
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		wf, res, err := runRandom(seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(res.TaskRuns) != wf.NumTasks() {
			t.Logf("seed %d: %d/%d tasks", seed, len(res.TaskRuns), wf.NumTasks())
			return false
		}
		end := make(map[dag.TaskID]simtime.Time)
		for _, tr := range res.TaskRuns {
			end[tr.Task] = tr.End
		}
		for _, tr := range res.TaskRuns {
			for _, d := range wf.Task(tr.Task).Deps {
				if tr.Start < end[d]-simtime.Eps {
					t.Logf("seed %d: dep order violated", seed)
					return false
				}
			}
		}
		if res.Utilization < 0 || res.Utilization > 1+simtime.Eps {
			t.Logf("seed %d: utilization %v", seed, res.Utilization)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: JSON serialization round-trips any random workflow exactly.
func TestRandomWorkflowJSONRoundTripProperty(t *testing.T) {
	f := func(seedRaw int16) bool {
		wf := randomWorkflow(int64(seedRaw))
		doc := dagio.Encode(wf)
		back, err := dagio.Decode(doc)
		if err != nil {
			return false
		}
		if back.NumTasks() != wf.NumTasks() || back.NumStages() != wf.NumStages() {
			return false
		}
		for i := range wf.Tasks {
			a, b := wf.Tasks[i], back.Tasks[i]
			if a.ExecTime != b.ExecTime || a.TransferTime != b.TransferTime ||
				a.InputSize != b.InputSize || len(a.Deps) != len(b.Deps) {
				return false
			}
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: on any snapshot mid-run, the lookahead's Q_task only contains
// incomplete tasks, with non-negative remaining occupancies, and restart
// costs only for non-draining instances.
func TestLookaheadProperty(t *testing.T) {
	f := func(seedRaw int16, tickRaw uint8) bool {
		seed := int64(seedRaw)
		wf := randomWorkflow(seed)
		grab := &grabber{want: int(tickRaw%8) + 1, inner: core.New(core.Config{})}
		cfg := sim.Config{
			Cloud: cloud.Config{SlotsPerInstance: 2, LagTime: 30, ChargingUnit: 120, MaxInstances: 6},
			Seed:  seed,
		}
		cfg.Interference = dist.NewLognormalFromMean(1, 0.1)
		if _, err := sim.Run(wf, grab, cfg); err != nil {
			return false
		}
		if grab.snap == nil {
			return true // run finished before the requested tick
		}
		snap := grab.snap
		pred := predict.New(predict.Config{})
		pred.Update(snap)
		load := lookahead.Project(snap, pred)
		seen := map[dag.TaskID]bool{}
		for _, tl := range load.Tasks {
			if tl.Remaining < 0 {
				return false
			}
			if snap.Task(tl.Task).State == monitor.Completed {
				return false
			}
			if seen[tl.Task] {
				return false // no duplicates in Q_task
			}
			seen[tl.Task] = true
		}
		for id, c := range load.RestartCost {
			if c < 0 {
				return false
			}
			found := false
			for _, in := range snap.Instances {
				if in.ID == id && !in.Draining {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// grabber keeps the snapshot from the want-th control tick.
type grabber struct {
	inner sim.Controller
	want  int
	n     int
	snap  *monitor.Snapshot
}

func (g *grabber) Name() string { return g.inner.Name() }

func (g *grabber) Plan(s *monitor.Snapshot) sim.Decision {
	g.n++
	if g.n == g.want {
		g.snap = s
	}
	return g.inner.Plan(s)
}

// Property: the predictor's estimate for a ready task with completed peers
// is bounded by the observed min/max of its stage (median-based policies
// cannot extrapolate beyond the sample), except for OGD extrapolation on
// unseen sizes.
func TestPredictorBoundedProperty(t *testing.T) {
	f := func(seedRaw int16, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := int(nRaw%12) + 2
		b := dag.NewBuilder("bound")
		st := b.AddStage("s")
		for i := 0; i < n; i++ {
			b.AddTask(st, "t", 1, 0, 50) // one shared input size
		}
		wf := b.MustBuild()
		snap := &monitor.Snapshot{Now: 100, Interval: 10, Workflow: wf,
			Tasks: make([]monitor.TaskRecord, n)}
		lo, hi := 1e18, 0.0
		for i := 0; i < n; i++ {
			rec := monitor.TaskRecord{ID: dag.TaskID(i), Stage: 0, State: monitor.Completed,
				InputSize: 50, ExecTime: 1 + rng.Float64()*100}
			if i == n-1 {
				rec = monitor.TaskRecord{ID: dag.TaskID(i), Stage: 0, State: monitor.Ready, InputSize: 50}
			} else {
				if rec.ExecTime < lo {
					lo = rec.ExecTime
				}
				if rec.ExecTime > hi {
					hi = rec.ExecTime
				}
			}
			snap.Tasks[i] = rec
		}
		p := predict.New(predict.Config{})
		p.Update(snap)
		est, pol := p.EstimateExec(snap, dag.TaskID(n-1))
		if pol != predict.PolicyGroupMedian {
			return false
		}
		return est >= lo-simtime.Eps && est <= hi+simtime.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
