// Package jsonlite is a minimal JSON scanner and set of append-encoders for
// the repo's hot wire types (monitoring snapshots, plan responses). The
// stock encoding/json round trip is reflect-driven and validates each input
// in a separate pass; for the structs exchanged every MAPE interval that
// overhead dominates the whole service path, so their codecs are written by
// hand against this package instead.
//
// The encoders are byte-identical to encoding/json — same float formatting,
// same string escaping (including HTML escaping), same omitempty shapes —
// so journals and golden streams cannot tell which codec produced them. The
// Parser implements the grammar and the decode semantics hand-written
// unmarshalers need: merge-into-existing values, last duplicate key wins,
// and slice capacity reuse are the caller's job; the parser only scans.
package jsonlite

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

// Parser scans one JSON value from Data. The zero value with Data set is
// ready to use.
type Parser struct {
	Data []byte
	Pos  int
}

// Errorf returns a decode error annotated with the current offset.
func (p *Parser) Errorf(format string, args ...any) error {
	return fmt.Errorf("jsonlite: at offset %d: %s", p.Pos, fmt.Sprintf(format, args...))
}

// WS skips insignificant whitespace.
func (p *Parser) WS() {
	for p.Pos < len(p.Data) {
		switch p.Data[p.Pos] {
		case ' ', '\t', '\n', '\r':
			p.Pos++
		default:
			return
		}
	}
}

// Expect consumes the next non-space byte, which must be c.
func (p *Parser) Expect(c byte) error {
	p.WS()
	if p.Pos >= len(p.Data) || p.Data[p.Pos] != c {
		return p.Errorf("expected %q", c)
	}
	p.Pos++
	return nil
}

// Peek returns the next non-space byte without consuming it (0 at EOF).
func (p *Parser) Peek() byte {
	p.WS()
	if p.Pos >= len(p.Data) {
		return 0
	}
	return p.Data[p.Pos]
}

// AtEnd reports whether only whitespace remains.
func (p *Parser) AtEnd() bool {
	p.WS()
	return p.Pos == len(p.Data)
}

// Key parses an object key and returns its unescaped bytes. Keys without
// escapes — every key this repo writes — are returned as a sub-slice of the
// input; escaped keys take the slow path through encoding/json.
func (p *Parser) Key() ([]byte, error) {
	start := p.Pos
	if err := p.Expect('"'); err != nil {
		return nil, err
	}
	begin := p.Pos
	escaped := false
	for p.Pos < len(p.Data) {
		switch p.Data[p.Pos] {
		case '"':
			raw := p.Data[begin:p.Pos]
			p.Pos++
			if !escaped {
				return raw, nil
			}
			// Rare: a key written with escape sequences can still name a
			// known field, so it must be unescaped to match.
			var k string
			if err := json.Unmarshal(p.Data[start:p.Pos], &k); err != nil {
				return nil, p.Errorf("bad object key: %v", err)
			}
			return []byte(k), nil
		case '\\':
			escaped = true
			p.Pos += 2
		default:
			p.Pos++
		}
	}
	return nil, p.Errorf("unterminated object key")
}

// String parses a JSON string value.
func (p *Parser) String() (string, error) {
	raw, err := p.Key()
	return string(raw), err
}

// SkipValue scans past one JSON value of any shape and returns its span
// (for delegating a subtree to another decoder).
func (p *Parser) SkipValue() ([]byte, error) {
	p.WS()
	start := p.Pos
	depth := 0
	for p.Pos < len(p.Data) {
		switch c := p.Data[p.Pos]; c {
		case '{', '[':
			depth++
			p.Pos++
		case '}', ']':
			depth--
			p.Pos++
			if depth <= 0 {
				if depth < 0 {
					return nil, p.Errorf("unbalanced %q", c)
				}
				return p.Data[start:p.Pos], nil
			}
		case '"':
			p.Pos++
			for p.Pos < len(p.Data) && p.Data[p.Pos] != '"' {
				if p.Data[p.Pos] == '\\' {
					p.Pos++
				}
				p.Pos++
			}
			if p.Pos >= len(p.Data) {
				return nil, p.Errorf("unterminated string")
			}
			p.Pos++
			if depth == 0 {
				return p.Data[start:p.Pos], nil
			}
		case ',', ':', ' ', '\t', '\n', '\r':
			if depth == 0 {
				return nil, p.Errorf("expected a value")
			}
			p.Pos++
		default:
			// A number or literal: scan its token.
			tokStart := p.Pos
			for p.Pos < len(p.Data) {
				switch p.Data[p.Pos] {
				case ',', '}', ']', ' ', '\t', '\n', '\r':
					goto tokenEnd
				}
				p.Pos++
			}
		tokenEnd:
			if tok := p.Data[tokStart:p.Pos]; !validToken(tok) {
				p.Pos = tokStart
				return nil, p.Errorf("invalid token %q", tok)
			}
			if depth == 0 {
				return p.Data[start:p.Pos], nil
			}
		}
	}
	return nil, p.Errorf("unterminated value")
}

// validToken reports whether a bare token is a legal JSON literal: one of
// the three keywords or a strict-grammar number. SkipValue rejects anything
// else ("tru", "01", ...) like encoding/json would.
func validToken(tok []byte) bool {
	switch string(tok) {
	case "null", "true", "false":
		return true
	}
	sub := Parser{Data: tok}
	if _, err := sub.NumberToken(); err != nil {
		return false
	}
	return sub.Pos == len(tok)
}

// NumberToken scans one JSON number (strict grammar) and returns its text.
func (p *Parser) NumberToken() ([]byte, error) {
	p.WS()
	start := p.Pos
	if p.Pos < len(p.Data) && p.Data[p.Pos] == '-' {
		p.Pos++
	}
	digits := 0
	first := byte(0)
	for p.Pos < len(p.Data) && p.Data[p.Pos] >= '0' && p.Data[p.Pos] <= '9' {
		if digits == 0 {
			first = p.Data[p.Pos]
		}
		p.Pos++
		digits++
	}
	if digits == 0 {
		return nil, p.Errorf("expected a number")
	}
	if first == '0' && digits > 1 {
		// The JSON grammar has no leading zeros: int is "0" or 1-9 *digit.
		return nil, p.Errorf("invalid leading zero in number")
	}
	if p.Pos < len(p.Data) && p.Data[p.Pos] == '.' {
		p.Pos++
		frac := 0
		for p.Pos < len(p.Data) && p.Data[p.Pos] >= '0' && p.Data[p.Pos] <= '9' {
			p.Pos++
			frac++
		}
		if frac == 0 {
			return nil, p.Errorf("expected fraction digits")
		}
	}
	if p.Pos < len(p.Data) && (p.Data[p.Pos] == 'e' || p.Data[p.Pos] == 'E') {
		p.Pos++
		if p.Pos < len(p.Data) && (p.Data[p.Pos] == '+' || p.Data[p.Pos] == '-') {
			p.Pos++
		}
		exp := 0
		for p.Pos < len(p.Data) && p.Data[p.Pos] >= '0' && p.Data[p.Pos] <= '9' {
			p.Pos++
			exp++
		}
		if exp == 0 {
			return nil, p.Errorf("expected exponent digits")
		}
	}
	return p.Data[start:p.Pos], nil
}

// Float parses a JSON number as float64.
func (p *Parser) Float() (float64, error) {
	tok, err := p.NumberToken()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, p.Errorf("bad number %q", tok)
	}
	return f, nil
}

// Int parses a JSON number destined for an integer field. Like
// encoding/json, only plain integer tokens are accepted — "1.0" and "3e2"
// are errors for integer targets.
func (p *Parser) Int() (int64, error) {
	tok, err := p.NumberToken()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return 0, p.Errorf("cannot decode number %q into an integer field", tok)
	}
	return n, nil
}

// Bool parses a JSON boolean.
func (p *Parser) Bool() (bool, error) {
	p.WS()
	switch {
	case len(p.Data)-p.Pos >= 4 && string(p.Data[p.Pos:p.Pos+4]) == "true":
		p.Pos += 4
		return true, nil
	case len(p.Data)-p.Pos >= 5 && string(p.Data[p.Pos:p.Pos+5]) == "false":
		p.Pos += 5
		return false, nil
	default:
		return false, p.Errorf("expected a boolean")
	}
}

// Null consumes a null literal if present and reports whether it did.
func (p *Parser) Null() bool {
	p.WS()
	if len(p.Data)-p.Pos >= 4 && string(p.Data[p.Pos:p.Pos+4]) == "null" {
		p.Pos += 4
		return true
	}
	return false
}

// Object drives the key/value loop of one object: fn receives each unescaped
// key and must parse the value. A null in place of the object is a no-op,
// matching encoding/json's treatment of null for structs.
func (p *Parser) Object(fn func(key []byte) error) error {
	if p.Null() {
		return nil
	}
	if err := p.Expect('{'); err != nil {
		return err
	}
	if p.Peek() == '}' {
		p.Pos++
		return nil
	}
	for {
		k, err := p.Key()
		if err != nil {
			return err
		}
		if err := p.Expect(':'); err != nil {
			return err
		}
		if err := fn(k); err != nil {
			return err
		}
		switch p.Peek() {
		case ',':
			p.Pos++
		case '}':
			p.Pos++
			return nil
		default:
			return p.Errorf("expected ',' or '}' in object")
		}
	}
}

// Array drives the element loop of one array; elem parses one element. It
// reports whether the value was an actual array (false for null), so callers
// can reproduce encoding/json's null-sets-slice-to-nil semantics.
func (p *Parser) Array(elem func() error) (bool, error) {
	if p.Null() {
		return false, nil
	}
	if err := p.Expect('['); err != nil {
		return false, err
	}
	if p.Peek() == ']' {
		p.Pos++
		return true, nil
	}
	for {
		if err := elem(); err != nil {
			return true, err
		}
		switch p.Peek() {
		case ',':
			p.Pos++
		case ']':
			p.Pos++
			return true, nil
		default:
			return true, p.Errorf("expected ',' or ']' in array")
		}
	}
}

// AppendFloat appends f formatted exactly as encoding/json formats floats:
// shortest representation, 'f' form except for very small or very large
// magnitudes, with the exponent's leading zero trimmed. NaN and infinities
// are unsupported, as in encoding/json; the returned error reports them and
// a zero is emitted so the output stays structurally valid.
func AppendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(dst, '0'), fmt.Errorf("json: unsupported value: %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// htmlSafe marks the ASCII bytes encoding/json emits verbatim inside strings
// when HTML escaping is on (the default for Marshal and Encoder).
var htmlSafe = func() (s [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		s[b] = true
	}
	s['"'], s['\\'], s['<'], s['>'], s['&'] = false, false, false, false, false
	return
}()

const hexDigits = "0123456789abcdef"

// AppendString appends s as a quoted JSON string, byte-identical to
// encoding/json's default (HTML-escaping) encoder.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 are valid JSON but break JavaScript string
		// literals; encoding/json escapes them.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendInt appends n in base 10 (integers need no special JSON handling;
// this keeps codec call sites uniform).
func AppendInt(dst []byte, n int64) []byte { return strconv.AppendInt(dst, n, 10) }
