package jsonlite

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestAppendStringMatchesStock pins AppendString byte-identical to
// encoding/json over escapes, HTML characters, control bytes, invalid
// UTF-8, and the U+2028/U+2029 JavaScript hazards.
func TestAppendStringMatchesStock(t *testing.T) {
	cases := []string{
		"", "plain", `qu"ote\back`, "a<b>&c", "tab\tnl\ncr\rbs\bff\f",
		"ctl\x00\x01\x1f", "unicode ☃ 日本語", "bad\xffutf8\xfe",
		"line sep ", "� already",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: stock marshal: %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Fatalf("%q: AppendString = %s, stock = %s", s, got, want)
		}
	}
}

// TestAppendFloatMatchesStock pins the float formatting (including the
// exponent-form thresholds and the e-09 -> e-9 trim) against encoding/json,
// and the non-finite error behaviour.
func TestAppendFloatMatchesStock(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.25, -36.22464037281123, 1e-6, 9.999e-7, 1e21,
		9.999e20, 3.009118605852871e-8, 2.1855305259276428e21,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		cases = append(cases, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(40)-20)))
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("%v: stock marshal: %v", f, err)
		}
		got, err := AppendFloat(nil, f)
		if err != nil {
			t.Fatalf("%v: AppendFloat: %v", f, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%v: AppendFloat = %s, stock = %s", f, got, want)
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := AppendFloat(nil, bad); err == nil {
			t.Fatalf("AppendFloat accepted %v", bad)
		}
	}
}

// TestSkipValueSpans pins SkipValue's span extraction over every JSON kind,
// nesting, and strings containing brackets.
func TestSkipValueSpans(t *testing.T) {
	cases := []string{
		`null`, `true`, `false`, `-1.5e+3`, `"s"`, `"br]ack}et"`,
		`[1,[2,{"a":"]"}],3]`, `{"k":{"n":[null]},"x":"{"}`,
	}
	for _, src := range cases {
		p := Parser{Data: []byte(" " + src + " ")}
		span, err := p.SkipValue()
		if err != nil {
			t.Fatalf("%q: SkipValue: %v", src, err)
		}
		if string(span) != src {
			t.Fatalf("%q: span = %q", src, span)
		}
		if !p.AtEnd() {
			t.Fatalf("%q: trailing input not consumed by AtEnd", src)
		}
	}
	for _, bad := range []string{``, `[1`, `{"a":`, `"unterminated`, `tru`, `01`} {
		p := Parser{Data: []byte(bad)}
		if _, err := p.SkipValue(); err == nil && p.AtEnd() {
			t.Fatalf("%q: SkipValue accepted malformed input", bad)
		}
	}
}
