// Package dagio serializes workflows to and from a JSON document, playing
// the role of Pegasus's DAX files and of the Hadoop-to-Pegasus DAG
// transformation in the paper (§IV-C2): recorded task profiles can be
// exported from one tool and replayed through the simulator.
package dagio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dag"
)

// Document is the on-disk workflow format. Field names are stable; this is
// part of the public tooling surface.
type Document struct {
	Name   string      `json:"name"`
	Stages []StageDoc  `json:"stages"`
	Tasks  []TaskDoc   `json:"tasks"`
	Meta   interface{} `json:"meta,omitempty"`
}

// StageDoc describes one stage.
type StageDoc struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

// TaskDoc describes one task with its recorded resource profile.
type TaskDoc struct {
	ID           int     `json:"id"`
	Stage        int     `json:"stage"`
	Name         string  `json:"name,omitempty"`
	Deps         []int   `json:"deps,omitempty"`
	ExecTime     float64 `json:"exec_time_s"`
	TransferTime float64 `json:"transfer_time_s,omitempty"`
	InputSize    float64 `json:"input_size_mb,omitempty"`
	OutputSize   float64 `json:"output_size_mb,omitempty"`
}

// Encode converts a workflow into its document form.
func Encode(w *dag.Workflow) *Document {
	doc := &Document{Name: w.Name}
	for _, st := range w.Stages {
		doc.Stages = append(doc.Stages, StageDoc{ID: int(st.ID), Name: st.Name})
	}
	for _, t := range w.Tasks {
		td := TaskDoc{
			ID:           int(t.ID),
			Stage:        int(t.Stage),
			Name:         t.Name,
			ExecTime:     t.ExecTime,
			TransferTime: t.TransferTime,
			InputSize:    t.InputSize,
			OutputSize:   t.OutputSize,
		}
		for _, d := range t.Deps {
			td.Deps = append(td.Deps, int(d))
		}
		doc.Tasks = append(doc.Tasks, td)
	}
	return doc
}

// Decode converts a document back into a validated workflow. Tasks must be
// listed in an order where dependencies precede dependents (Encode always
// produces such an order because task IDs are assigned in creation order).
func Decode(doc *Document) (*dag.Workflow, error) {
	b := dag.NewBuilder(doc.Name)
	for i, st := range doc.Stages {
		if st.ID != i {
			return nil, fmt.Errorf("dagio: stage %d out of order (ID %d)", i, st.ID)
		}
		b.AddStage(st.Name)
	}
	for i, td := range doc.Tasks {
		if td.ID != i {
			return nil, fmt.Errorf("dagio: task %d out of order (ID %d)", i, td.ID)
		}
		deps := make([]dag.TaskID, len(td.Deps))
		for j, d := range td.Deps {
			deps[j] = dag.TaskID(d)
		}
		id := b.AddTask(dag.StageID(td.Stage), td.Name, td.ExecTime, td.TransferTime, td.InputSize, deps...)
		b.SetOutputSize(id, td.OutputSize)
	}
	return b.Build()
}

// Write serializes the workflow as indented JSON.
func Write(w io.Writer, wf *dag.Workflow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Encode(wf))
}

// Read parses a workflow from JSON and validates it.
func Read(r io.Reader) (*dag.Workflow, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dagio: %w", err)
	}
	return Decode(&doc)
}
