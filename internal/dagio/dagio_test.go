package dagio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
)

func sample(t *testing.T) *dag.Workflow {
	t.Helper()
	b := dag.NewBuilder("sample")
	s0 := b.AddStage("split")
	s1 := b.AddStage("map")
	root := b.AddTask(s0, "split", 5, 1, 200)
	b.SetOutputSize(root, 180)
	for i := 0; i < 3; i++ {
		b.AddTask(s1, "map", float64(10+i), 0.5, 60, root)
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRoundTrip(t *testing.T) {
	w := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || got.NumTasks() != w.NumTasks() || got.NumStages() != w.NumStages() {
		t.Fatalf("round trip changed shape: %+v", got)
	}
	for i, task := range w.Tasks {
		g := got.Tasks[i]
		if g.ExecTime != task.ExecTime || g.TransferTime != task.TransferTime ||
			g.InputSize != task.InputSize || g.OutputSize != task.OutputSize ||
			g.Stage != task.Stage || len(g.Deps) != len(task.Deps) {
			t.Fatalf("task %d changed: %+v vs %+v", i, g, task)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected JSON error")
	}
}

func TestDecodeRejectsOutOfOrderIDs(t *testing.T) {
	doc := &Document{
		Name:   "bad",
		Stages: []StageDoc{{ID: 1, Name: "s"}},
	}
	if _, err := Decode(doc); err == nil {
		t.Fatal("expected stage-order error")
	}
	doc2 := &Document{
		Name:   "bad2",
		Stages: []StageDoc{{ID: 0, Name: "s"}},
		Tasks:  []TaskDoc{{ID: 5, Stage: 0}},
	}
	if _, err := Decode(doc2); err == nil {
		t.Fatal("expected task-order error")
	}
}

func TestDecodeRejectsForwardDeps(t *testing.T) {
	doc := &Document{
		Name:   "fwd",
		Stages: []StageDoc{{ID: 0, Name: "s"}},
		Tasks: []TaskDoc{
			{ID: 0, Stage: 0, Deps: []int{1}},
			{ID: 1, Stage: 0},
		},
	}
	if _, err := Decode(doc); err == nil {
		t.Fatal("expected forward-dependency error")
	}
}

func TestEncodeFieldNamesStable(t *testing.T) {
	w := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"exec_time_s"`, `"input_size_mb"`, `"stages"`, `"tasks"`} {
		if !strings.Contains(buf.String(), field) {
			t.Fatalf("serialized form missing %s:\n%s", field, buf.String())
		}
	}
}
