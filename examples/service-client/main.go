// Service client: start a wire-serve daemon in-process, replay an
// Epigenomics run against it over HTTP, and print the cost/performance
// summary alongside the daemon's own view of the session.
//
// The simulator executes locally; every MAPE iteration becomes a POST to
// /v1/sessions/{id}/plan, so the run proves a decision stream served over
// the network steers the workflow exactly like an in-process controller.
//
//	go run ./examples/service-client
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/wire"
)

func main() {
	// Start the daemon on an ephemeral port, exactly as `wire-serve serve
	// -addr 127.0.0.1:0` would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := wire.NewServiceServer(wire.ServiceConfig{Logf: func(string, ...any) {}})
	ctx, stop := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	fmt.Printf("wire-serve daemon up at %s\n", base)
	client := wire.NewServiceClient(base)

	// Epigenomics "Genome S" from the Table I catalogue, planned remotely.
	run, ok := wire.CatalogByKey("genome-s")
	if !ok {
		log.Fatal("genome-s missing from catalogue")
	}
	wf := run.Generate(1)
	rc, err := wire.NewRemoteController(ctx, client, wire.CreateSessionRequest{
		Workflow: wire.EncodeWorkflow(wf),
		Policy:   "wire",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()
	fmt.Printf("session %s: %q, %d tasks over %d stages\n",
		rc.Session().ID, wf.Name, wf.NumTasks(), wf.NumStages())

	res, err := wire.Run(wf, rc, wire.RunConfig{
		Cloud: wire.CloudConfig{
			SlotsPerInstance: 4,
			LagTime:          180, // 3 min instantiation lag = MAPE interval
			ChargingUnit:     900, // billed per 15 min
			MaxInstances:     12,
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rc.Err(); err != nil {
		log.Fatal("remote planning: ", err)
	}

	fmt.Printf("\nmakespan:        %.0f s\n", res.Makespan)
	fmt.Printf("charging units:  %d (%.0f s paid)\n", res.UnitsCharged, res.ChargedSeconds)
	fmt.Printf("utilization:     %.1f%%\n", res.Utilization*100)
	fmt.Printf("peak pool:       %d instances\n", res.PeakPool)
	fmt.Printf("MAPE iterations: %d, all over HTTP\n", res.Decisions)

	// The daemon's own view of the session and its traffic.
	state, err := client.State(ctx, rc.Session().ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver session state: %d plans served under policy %q\n",
		state.Plans, state.Policy)
	md, err := client.MetricsDump(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if ep, ok := md.Endpoints["plan"]; ok && ep.LatencyMs != nil {
		fmt.Printf("server plan endpoint: %d requests, p99 %.2f ms\n",
			ep.Count, ep.LatencyMs.P99)
	}

	// Graceful shutdown: delete the session, then drain the daemon.
	if err := rc.Close(); err != nil {
		log.Fatal(err)
	}
	stop()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndaemon drained and stopped cleanly")
}
