// Live run: close the MAPE loop outside the simulator. The program drives a
// live execution run of an Epigenomics-class workflow at high timescale
// through real worker agents: each agent leases tasks, emulates them on the
// wall clock, and reports measured execution and transfer times, so the WIRE
// controller plans from genuine monitoring snapshots assembled out of agent
// telemetry.
//
// After the workflow completes, the program fetches the recorded
// snapshot→decision stream and replays it through a fresh in-process
// controller (TwinVerify): the live decision stream must be byte-identical to
// the simulator twin's — the live-vs-sim parity certificate — and the lease
// counters must show zero lost leases.
//
//	go run ./examples/live-run
//
// By default the daemon is hosted in-process and the agents are goroutines.
// Flags turn the program into the CI certificate driver:
//
//	-server URL      drive an external wire-serve daemon instead
//	-agent-bin PATH  spawn real wire-agent processes instead of goroutines
//	-kill-agent      agent-kill chaos certificate: SIGKILL the first worker
//	                 while it holds leases; the run must still complete with
//	                 every leased task reclaimed and re-executed (needs
//	                 -agent-bin)
//	-server-bin PATH spawn a real wire-serve daemon process
//	-kill-server     server-kill chaos certificate: SIGKILL the daemon once
//	                 the run has made progress, restart it on the same
//	                 address against the same journal directory, and require
//	                 the run to finish with lease identity intact and the
//	                 decision stream byte-identical under TwinVerify (needs
//	                 -server-bin)
//	-journal DIR     journal directory for the spawned daemon (default: a
//	                 fresh temp dir)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/wire"
)

func main() {
	server := flag.String("server", "", "external wire-serve base URL (default: host the daemon in-process)")
	agentBin := flag.String("agent-bin", "", "wire-agent binary to spawn as real worker processes (default: in-process goroutines)")
	agentN := flag.Int("agents", 2, "number of worker agents")
	slots := flag.Int("slots", 4, "task slots per agent and per instance")
	workflow := flag.String("workflow", "genome-s", "catalogued run key")
	policy := flag.String("policy", "wire", "controller policy")
	timescale := flag.Float64("timescale", 100, "simulated seconds per wall second")
	killAgent := flag.Bool("kill-agent", false, "kill the first worker mid-task and require reclaim (needs -agent-bin)")
	serverBin := flag.String("server-bin", "", "wire-serve binary to spawn as a real daemon process")
	killServer := flag.Bool("kill-server", false, "SIGKILL the daemon mid-run and restart it from its journal (needs -server-bin)")
	journalDir := flag.String("journal", "", "journal directory for the spawned daemon (default: temp dir)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall run deadline")
	flag.Parse()
	if *killAgent && *agentBin == "" {
		log.Fatal("-kill-agent needs -agent-bin (only a real process can be killed)")
	}
	if *killServer && *serverBin == "" {
		log.Fatal("-kill-server needs -server-bin (only a real process can be killed)")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// 1. A daemon to talk to: external (-server), a spawned wire-serve
	//    process (-server-bin), or hosted in-process on an ephemeral port, as
	//    `wire-serve serve -addr 127.0.0.1:0` would.
	base := *server
	var serverCmd *exec.Cmd
	if base == "" && *serverBin != "" {
		if *journalDir == "" {
			dir, err := os.MkdirTemp("", "live-run-journal-")
			if err != nil {
				log.Fatal(err)
			}
			*journalDir = dir
		}
		var err error
		serverCmd, base, err = spawnServe(ctx, *serverBin, "127.0.0.1:0", *journalDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wire-serve daemon process up at %s (pid %d, journal %s)\n",
			base, serverCmd.Process.Pid, *journalDir)
	} else if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := wire.NewServiceServer(wire.ServiceConfig{Logf: func(string, ...any) {}})
		go func() {
			if err := srv.Serve(ctx, ln); err != nil {
				log.Fatal(err)
			}
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("wire-serve daemon up at %s\n", base)
	}
	client := wire.NewLiveClient(base)

	// 2. Create the live run under the paper's site parameters (§IV-B):
	//    instances host a few task slots, ~3 min instantiation lag, 15 min
	//    charging unit.
	info, err := client.CreateRun(ctx, &wire.LiveRunRequest{
		WorkflowKey:      *workflow,
		Policy:           *policy,
		SlotsPerInstance: *slots,
		LagTimeS:         180,
		ChargingUnitS:    900,
		MaxInstances:     12,
		Timescale:        *timescale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s: %s (%d tasks / %d stages) under %s at %g× timescale\n",
		info.ID, info.Workflow, info.Tasks, info.Stages, info.Policy, info.Timescale)

	status := func() wire.LiveRunStatus {
		st, err := client.RunStatus(ctx, info.ID)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	// 3. The workers. With -agent-bin they are separate wire-agent
	//    processes; otherwise goroutines running the identical loop.
	var (
		goAgents sync.WaitGroup
		procs    []*exec.Cmd
		doomed   *exec.Cmd
	)
	spawn := func(name string) {
		if *agentBin != "" {
			cmd := exec.CommandContext(ctx, *agentBin,
				"-server", base, "-run", info.ID, "-name", name,
				"-slots", fmt.Sprint(*slots))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("spawned agent process %s (pid %d)\n", name, cmd.Process.Pid)
			procs = append(procs, cmd)
			if name == "doomed" {
				doomed = cmd
			}
			return
		}
		goAgents.Add(1)
		go func() {
			defer goAgents.Done()
			err := wire.RunLiveAgent(ctx, wire.LiveAgentConfig{
				BaseURL: base, RunID: info.ID, Name: name, Slots: *slots,
			})
			if err != nil && ctx.Err() == nil {
				log.Fatalf("agent %s: %v", name, err)
			}
		}()
	}
	if *killAgent {
		// The victim must register first so it binds the bootstrap
		// instance and is guaranteed to be holding leases when killed.
		// Spawn order alone does not guarantee that — the processes race
		// to register over HTTP, and if a worker wins, the victim parks
		// with zero leases forever and the kill loop below never fires.
		// Hold the workers back until the dispatcher has seen the victim.
		spawn("doomed")
		for {
			var seen bool
			for _, a := range status().Agents {
				if a.Name == "doomed" {
					seen = true
				}
			}
			if seen {
				break
			}
			if ctx.Err() != nil {
				log.Fatal("victim never registered")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	for i := 1; i <= *agentN; i++ {
		spawn(fmt.Sprintf("worker-%d", i))
	}

	// 4. Start the run clock.
	if _, err := client.StartRun(ctx, info.ID); err != nil {
		log.Fatal(err)
	}

	// 5. Chaos: once the victim holds active leases, kill -9 it. Its
	//    heartbeat lapses, the dispatcher declares the agent failed, and
	//    every leased task must be reclaimed and re-executed elsewhere.
	if *killAgent {
		for {
			st := status()
			var active int
			for _, a := range st.Agents {
				if a.Name == "doomed" {
					active = a.ActiveLeases
				}
			}
			if active > 0 {
				fmt.Printf("killing agent 'doomed' (pid %d) holding %d active leases\n",
					doomed.Process.Pid, active)
				if err := doomed.Process.Kill(); err != nil {
					log.Fatal(err)
				}
				break
			}
			if ctx.Err() != nil {
				log.Fatal("victim never received a lease")
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// 5b. Chaos: once the run has made real progress, SIGKILL the daemon
	//     process, then restart it on the same address against the same
	//     journal directory. The restarted dispatcher must rebuild the run —
	//     queue, leases, agents, instances, controller state — from the
	//     journal alone; the agents ride out the outage on their poll
	//     backoff and keep their identities.
	if *killServer {
		for {
			st := status()
			if st.TasksCompleted >= 1 {
				break
			}
			if ctx.Err() != nil {
				log.Fatal("run made no progress before the server kill")
			}
			time.Sleep(100 * time.Millisecond)
		}
		addr := strings.TrimPrefix(base, "http://")
		fmt.Printf("killing wire-serve daemon (pid %d) mid-run\n", serverCmd.Process.Pid)
		if err := serverCmd.Process.Kill(); err != nil {
			log.Fatal(err)
		}
		_ = serverCmd.Wait() // SIGKILL; non-zero by design
		var err error
		serverCmd, _, err = spawnServe(ctx, *serverBin, addr, *journalDir)
		if err != nil {
			log.Fatalf("daemon restart: %v", err)
		}
		fmt.Printf("wire-serve daemon restarted at %s (pid %d)\n", base, serverCmd.Process.Pid)
		if n := liveRunsRecovered(ctx, base); n < 1 {
			log.Fatalf("FAILED: restarted daemon reports %d runs recovered from journal", n)
		}
	}

	// 6. Wait for the workflow to finish.
	var st wire.LiveRunStatus
	for {
		st = status()
		if st.State.String() == "done" || st.State.String() == "failed" {
			break
		}
		if ctx.Err() != nil {
			log.Fatalf("run still %s at deadline (%d/%d tasks)", st.State, st.TasksCompleted, st.Tasks)
		}
		time.Sleep(250 * time.Millisecond)
	}
	goAgents.Wait()
	for _, cmd := range procs {
		if cmd == doomed {
			_ = cmd.Wait() // killed; non-zero by design
			continue
		}
		if err := cmd.Wait(); err != nil && ctx.Err() == nil {
			log.Fatalf("agent process: %v", err)
		}
	}
	if st.Result == nil {
		log.Fatalf("run %s: %s", st.State, st.Error)
	}
	res := st.Result

	fmt.Printf("\nlive run complete in %v wall\n", time.Duration(res.WallElapsedMs)*time.Millisecond)
	fmt.Printf("  makespan      %.1f simulated min\n", res.MakespanS/60)
	fmt.Printf("  units charged %d (%.0f instance-seconds)\n", res.UnitsCharged, res.ChargedSeconds)
	fmt.Printf("  utilization   %.1f%%   peak pool %d   launches %d   restarts %d   failures %d\n",
		res.Utilization*100, res.PeakPool, res.Launches, res.Restarts, res.Failures)
	fmt.Printf("  decisions     %d   leases granted %d / completed %d / reclaimed %d / superseded %d / lost %d\n",
		res.Decisions, res.Counters.LeasesGranted, res.Counters.LeasesCompleted,
		res.Counters.LeasesReclaimed, res.Counters.LeasesSuperseded, res.Counters.LeasesLost)
	if res.Counters.LeasesLost != 0 {
		log.Fatalf("FAILED: %d leases lost", res.Counters.LeasesLost)
	}
	if got := res.Counters.LeasesGranted - res.Counters.LeasesCompleted -
		res.Counters.LeasesReclaimed - res.Counters.LeasesSuperseded; got != 0 {
		log.Fatalf("FAILED: lease identity violated by %d", got)
	}
	if *killAgent {
		if res.Counters.AgentsFailed == 0 || res.Counters.LeasesReclaimed == 0 {
			log.Fatalf("FAILED: agent kill not observed (failed=%d reclaimed=%d)",
				res.Counters.AgentsFailed, res.Counters.LeasesReclaimed)
		}
		fmt.Printf("\nchaos certificate PASSED: %d agent(s) failed, %d leased task(s) reclaimed and re-executed\n",
			res.Counters.AgentsFailed, res.Counters.LeasesReclaimed)
	}

	// 7. Parity certificate: replay the recorded snapshots through a fresh
	//    controller and require a byte-identical decision stream.
	records, err := client.PlanStream(ctx, info.ID)
	if err != nil {
		log.Fatal(err)
	}
	twin, err := wire.NewPolicyController(*policy, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := wire.TwinVerify(records, twin); err != nil {
		log.Fatalf("FAILED: %v", err)
	}
	fmt.Printf("\nparity certificate PASSED: %d live decisions byte-identical to the simulator twin\n",
		len(records))
	if *killServer {
		fmt.Println("server-kill certificate PASSED: run survived a daemon SIGKILL + journal restart with lease identity intact")
	}
	if serverCmd != nil {
		_ = serverCmd.Process.Signal(syscall.SIGTERM)
		_ = serverCmd.Wait()
	}
}

// spawnServe starts a wire-serve daemon process on addr with journaling into
// dir, waits for it to print its bound URL and answer /healthz, and returns
// the running command plus the base URL.
func spawnServe(ctx context.Context, bin, addr, dir string) (*exec.Cmd, string, error) {
	cmd := exec.CommandContext(ctx, bin, "serve", "-addr", addr, "-journal", dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("wire-serve never reported its address")
	}
	go io.Copy(io.Discard, stdout) // keep draining so the daemon never blocks
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, nil
			}
		}
		if ctx.Err() != nil {
			_ = cmd.Process.Kill()
			return nil, "", fmt.Errorf("wire-serve at %s never became healthy", base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// liveRunsRecovered reads the daemon's /metrics live block and returns how
// many runs it resurrected from journals at startup.
func liveRunsRecovered(ctx context.Context, base string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Live struct {
			RunsRecovered int `json:"runs_recovered"`
		} `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	return m.Live.RunsRecovered
}
