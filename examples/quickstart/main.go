// Quickstart: build a small fan-out/fan-in workflow with the public API,
// run it under the WIRE auto-scaler on a simulated IaaS site, and print the
// cost/performance summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/wire"
)

func main() {
	// A split -> 16 workers -> merge workflow. Times are seconds, sizes
	// are MB; worker execution time scales with input size, which is
	// exactly the structure WIRE's Policy 4/5 predictors exploit.
	b := wire.NewWorkflowBuilder("quickstart")
	split := b.AddStage("split")
	work := b.AddStage("work")
	merge := b.AddStage("merge")

	root := b.AddTask(split, "split", 15, 2, 256)
	var workers []wire.TaskID
	for i := 0; i < 16; i++ {
		size := 64.0 * float64(1+i%4) // four input-size groups
		exec := 2 * size              // runtime grows with input
		workers = append(workers, b.AddTask(work, fmt.Sprintf("work-%d", i), exec, 1, size, root))
	}
	b.AddTask(merge, "merge", 30, 2, 128, workers...)

	wf, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := wire.RunConfig{
		Cloud: wire.CloudConfig{
			SlotsPerInstance: 2,   // tasks per worker instance
			LagTime:          60,  // 1 min to launch an instance
			ChargingUnit:     300, // billed per 5 min
			MaxInstances:     8,   // site cap
		},
	}

	res, err := wire.Run(wf, wire.NewController(wire.ControllerConfig{}), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow %q: %d tasks over %d stages\n", wf.Name, wf.NumTasks(), wf.NumStages())
	fmt.Printf("makespan:        %.0f s\n", res.Makespan)
	fmt.Printf("charging units:  %d (%.0f s paid)\n", res.UnitsCharged, res.ChargedSeconds)
	fmt.Printf("utilization:     %.1f%%\n", res.Utilization*100)
	fmt.Printf("peak pool:       %d instances\n", res.PeakPool)
	fmt.Printf("MAPE iterations: %d\n", res.Decisions)

	// Compare with renting the whole site for the whole run.
	static := cfg
	static.InitialInstances = cfg.Cloud.MaxInstances
	full, err := wire.Run(wf, wire.FullSite, static)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-site comparator: %d units, makespan %.0f s\n", full.UnitsCharged, full.Makespan)
	fmt.Printf("WIRE saves %.0f%% of the cost at %.2fx the execution time\n",
		(1-float64(res.UnitsCharged)/float64(full.UnitsCharged))*100,
		res.Makespan/full.Makespan)
}
