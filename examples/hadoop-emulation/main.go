// Hadoop emulation: the paper replays recorded Hadoop task profiles on
// Pegasus through a "task emulator" (§IV-C2). This example shows the
// equivalent path here: export a TPC-H workflow (its DAG plus recorded task
// resource profiles) to JSON, reload it as a trace, and execute the
// replayed trace under WIRE.
//
//	go run ./examples/hadoop-emulation
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/wire"
)

func main() {
	run, ok := wire.CatalogByKey("tpch1-s")
	if !ok {
		log.Fatal("tpch1-s missing from the catalogue")
	}
	original := run.Generate(42)

	// "Record" the Hadoop run: serialize the DAG and task profiles.
	var trace bytes.Buffer
	if err := wire.WriteWorkflow(&trace, original); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trace: %d bytes of JSON for %d tasks / %d stages\n",
		trace.Len(), original.NumTasks(), original.NumStages())

	// "Replay" it: the emulator consumes resources exactly as recorded.
	replayed, err := wire.ReadWorkflow(&trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := replayed.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := wire.RunConfig{
		Cloud: wire.CloudConfig{
			SlotsPerInstance: 4,
			LagTime:          180,
			ChargingUnit:     60, // 1 min unit: the most elastic setting
			MaxInstances:     12,
		},
		Seed: 42,
	}
	res, err := wire.Run(replayed, wire.NewController(wire.ControllerConfig{}), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %q under WIRE:\n", replayed.Name)
	fmt.Printf("  makespan        %.1f min\n", res.Makespan/60)
	fmt.Printf("  charging units  %d\n", res.UnitsCharged)
	fmt.Printf("  utilization     %.1f%%\n", res.Utilization*100)
	fmt.Printf("  peak pool       %d\n", res.PeakPool)

	// The stage barriers of the Hadoop DAG survive the round trip: every
	// reduce1 task depends on all map1 tasks.
	reduce := replayed.Stage(1)
	fmt.Printf("  reduce1 fan-in  %d deps per task (Hadoop stage barrier)\n",
		len(replayed.Task(reduce.Tasks[0]).Deps))
}
