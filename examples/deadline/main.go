// Deadline: the repository's extension controller inverts WIRE's objective
// — instead of "fastest run that keeps every instance busy a full charging
// unit", it buys the cheapest pool expected to finish by a target time,
// reusing the same online prediction and DAG lookahead. This example runs
// the TPCH-1 L workflow under a sweep of deadlines and shows the cost/time
// frontier, with plain WIRE for reference.
//
//	go run ./examples/deadline
package main

import (
	"fmt"
	"log"

	"repro/wire"
)

func main() {
	run, ok := wire.CatalogByKey("tpch1-l")
	if !ok {
		log.Fatal("tpch1-l missing from the catalogue")
	}

	cloudCfg := wire.CloudConfig{
		SlotsPerInstance: 4,
		LagTime:          180,
		ChargingUnit:     900, // 15 min
		MaxInstances:     12,
	}

	fmt.Println("TPCH-1 L, 15-minute charging units, deadline sweep:")
	fmt.Printf("%10s  %8s  %9s  %9s  %s\n", "deadline", "units", "makespan", "met?", "peak pool")
	for _, deadline := range []float64{900, 1800, 3600, 7200} {
		wf := run.Generate(1)
		ctrl := wire.NewDeadlineController(wire.DeadlineConfig{Deadline: deadline})
		res, err := wire.Run(wf, ctrl, wire.RunConfig{Cloud: cloudCfg, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		met := "yes"
		if res.Makespan > deadline {
			met = "NO"
		}
		fmt.Printf("%9.0fs  %8d  %8.1fm  %9s  %d\n",
			deadline, res.UnitsCharged, res.Makespan/60, met, res.PeakPool)
	}

	wf := run.Generate(1)
	res, err := wire.Run(wf, wire.NewController(wire.ControllerConfig{}), wire.RunConfig{Cloud: cloudCfg, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference: plain WIRE spends %d units with a %.1f-minute makespan\n",
		res.UnitsCharged, res.Makespan/60)
	fmt.Println("tighter deadlines buy speed with extra charging units; loose ones converge")
	fmt.Println("to the cost-minimal pool.")
}
