// Custom policy: the Controller interface is open — anything that can read
// a monitoring snapshot and order pool changes can steer the cluster. This
// example implements a naive fixed-step hysteresis autoscaler against the
// public API and races it against WIRE on a bursty two-wave workflow.
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"

	"repro/wire"
)

// hysteresis grows the pool by one instance when more than growAt tasks are
// waiting per instance, and releases an idle instance when fewer than
// shrinkAt are active. It is deliberately simple: no DAG lookahead, no
// charging-unit awareness — the things WIRE adds.
type hysteresis struct {
	growAt   int
	shrinkAt int
}

func (h *hysteresis) Name() string { return "hysteresis" }

func (h *hysteresis) Plan(snap *wire.Snapshot) wire.Decision {
	active := snap.ActiveLoad()
	held := snap.NonDrainingInstances()
	m := len(held)
	if m == 0 {
		return wire.Decision{Launch: 1}
	}
	perInstance := active / m
	switch {
	case perInstance > h.growAt && (snap.MaxInstances == 0 || m < snap.MaxInstances):
		return wire.Decision{Launch: 1}
	case active < h.shrinkAt && m > 1:
		// Release one idle instance, if any.
		for _, in := range held {
			if len(in.Running) == 0 {
				return wire.Decision{Releases: []wire.ReleaseOrder{{Instance: in.ID}}}
			}
		}
	}
	return wire.Decision{}
}

// burstyWorkflow alternates wide and narrow stages — the pattern that makes
// fixed-step reactive scaling pay either in idle cost or in waiting time.
func burstyWorkflow() *wire.Workflow {
	b := wire.NewWorkflowBuilder("bursty")
	var prev []wire.TaskID
	for wave := 0; wave < 3; wave++ {
		wide := b.AddStage(fmt.Sprintf("wide-%d", wave))
		var cur []wire.TaskID
		for i := 0; i < 24; i++ {
			cur = append(cur, b.AddTask(wide, "w", 120, 2, 64, prev...))
		}
		narrow := b.AddStage(fmt.Sprintf("narrow-%d", wave))
		gate := b.AddTask(narrow, "gate", 30, 2, 16, cur...)
		prev = []wire.TaskID{gate}
	}
	return b.MustBuild()
}

func main() {
	cloud := wire.CloudConfig{
		SlotsPerInstance: 2,
		LagTime:          60,
		ChargingUnit:     120,
		MaxInstances:     10,
	}

	controllers := map[string]func() wire.Controller{
		"hysteresis": func() wire.Controller { return &hysteresis{growAt: 4, shrinkAt: 2} },
		"wire":       func() wire.Controller { return wire.NewController(wire.ControllerConfig{}) },
	}

	for _, name := range []string{"hysteresis", "wire"} {
		res, err := wire.Run(burstyWorkflow(), controllers[name](), wire.RunConfig{Cloud: cloud, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s units=%-3d makespan=%5.1f min  utilization=%4.1f%%  peak=%d\n",
			name, res.UnitsCharged, res.Makespan/60, res.Utilization*100, res.PeakPool)
	}
	fmt.Println("\nWIRE sizes the pool to the predicted wave in one step and releases at")
	fmt.Println("charging boundaries through the narrow gates; one-step hysteresis trails")
	fmt.Println("each wave by several control periods, finishing later for the same bill.")
}
