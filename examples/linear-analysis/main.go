// Linear analysis: the worked examples of §III-E. A single stage of N
// identical R-second tasks starts on one instance under charging unit U;
// the scaling algorithm grows the pool as online estimates firm up. The
// paper shows cost stays near the non-wasteful optimum NR/U while the
// completion time lands within a factor of two of the all-parallel optimum
// R — and approaches both as R/U grows.
//
//	go run ./examples/linear-analysis
package main

import (
	"fmt"
	"log"

	"repro/wire"
)

func main() {
	const (
		n = 50
		u = 60.0 // charging unit
	)
	fmt.Printf("single stage, N=%d identical tasks, charging unit U=%.0fs, start pool=1\n\n", n, u)
	fmt.Printf("%6s  %12s  %12s  %9s\n", "R/U", "cost/optimal", "time/optimal", "peak pool")
	for _, ratio := range []float64{1, 2, 5, 10, 50, 200} {
		r := ratio * u
		wf := wire.LinearWorkflow(n, r)
		res, err := wire.Run(wf, wire.NewController(wire.ControllerConfig{}), wire.RunConfig{
			Cloud: wire.CloudConfig{
				SlotsPerInstance: 1,
				LagTime:          0, // idealized: instantaneous control (§III-E)
				ChargingUnit:     u,
				MaxInstances:     0, // unbounded site
			},
			Interval:         u / 25,
			InitialInstances: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		optCost := float64(n) * r / u
		fmt.Printf("%6.0f  %12.3f  %12.3f  %9d\n",
			ratio, float64(res.UnitsCharged)/optCost, res.Makespan/r, res.PeakPool)
	}
	fmt.Println("\ncost stays within ~1.3x of sequential-optimal and completion time within ~2x")
	fmt.Println("of parallel-optimal, both approaching 1.0 as R/U grows — Figure 2's shape.")
}
