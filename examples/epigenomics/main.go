// Epigenomics: run the paper's Genome S workflow (Table I) under all four
// resource-management settings of §IV-C3 and compare resource cost and
// execution time — a one-workflow slice of Figures 5 and 6.
//
//	go run ./examples/epigenomics
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/wire"
)

func main() {
	run, ok := wire.CatalogByKey("genome-s")
	if !ok {
		log.Fatal("genome-s missing from the catalogue")
	}

	cloud := wire.CloudConfig{
		SlotsPerInstance: 4,   // XOXLarge instances host 4 tasks (§IV-B)
		LagTime:          180, // ~3 min instantiation lag
		ChargingUnit:     900, // 15 min charging unit
		MaxInstances:     12,  // site maximum
	}

	type setting struct {
		name string
		ctrl func() wire.Controller
		init int
	}
	settings := []setting{
		{"full-site", func() wire.Controller { return wire.FullSite }, cloud.MaxInstances},
		{"pure-reactive", func() wire.Controller { return wire.PureReactive }, 0},
		{"reactive-conserving", wire.NewReactiveConserving, 0},
		{"wire", func() wire.Controller { return wire.NewController(wire.ControllerConfig{}) }, 0},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tunits\tmakespan\tutilization\tpeak pool\trestarts")
	for _, s := range settings {
		wf := run.Generate(1) // same trace for every policy
		cfg := wire.RunConfig{Cloud: cloud, Seed: 1, InitialInstances: s.init}
		res, err := wire.Run(wf, s.ctrl(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f min\t%.1f%%\t%d\t%d\n",
			s.name, res.UnitsCharged, res.Makespan/60, res.Utilization*100, res.PeakPool, res.Restarts)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
